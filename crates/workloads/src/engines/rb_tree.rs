//! Red-Black Tree microbenchmark: "data structure lookups with pointer
//! chasing behavior" (§V-A).
//!
//! A genuine arena-backed red-black tree is built by inserting the whole
//! key population in shuffled order (so the shape matches an
//! insertion-built production tree, not a perfectly balanced one). Each
//! node carries a simulated address; lookups descend from the root and
//! emit one read per visited node — the worst kind of dependent-load
//! chain for a DRAM cache.

use astriflash_sim::SimRng;

use crate::address_space::{AddressSpace, SimAlloc, PAGE_SIZE};
use crate::engines::touch_record;
use crate::job::{JobBuf, JobSpec, MemoryAccess, Operation, WorkloadEngine};
use crate::kind::WorkloadParams;
use crate::popularity::KeyChooser;

const NODE_BYTES: u64 = 64;
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    Red,
    Black,
}

#[derive(Debug, Clone)]
struct Node {
    key: u64,
    left: u32,
    right: u32,
    parent: u32,
    color: Color,
    addr: u64,
    record_addr: u64,
}

/// An arena-backed red-black tree with simulated node addresses.
#[derive(Debug)]
pub struct RbArena {
    nodes: Vec<Node>,
    root: u32,
    /// Slots of deleted nodes, reused by later inserts.
    free: Vec<u32>,
    len: usize,
}

impl RbArena {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RbArena {
            nodes: Vec::new(),
            root: NIL,
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn color(&self, n: u32) -> Color {
        if n == NIL {
            Color::Black
        } else {
            self.nodes[n as usize].color
        }
    }

    fn rotate_left(&mut self, x: u32) {
        let y = self.nodes[x as usize].right;
        debug_assert_ne!(y, NIL);
        let y_left = self.nodes[y as usize].left;
        self.nodes[x as usize].right = y_left;
        if y_left != NIL {
            self.nodes[y_left as usize].parent = x;
        }
        let x_parent = self.nodes[x as usize].parent;
        self.nodes[y as usize].parent = x_parent;
        if x_parent == NIL {
            self.root = y;
        } else if self.nodes[x_parent as usize].left == x {
            self.nodes[x_parent as usize].left = y;
        } else {
            self.nodes[x_parent as usize].right = y;
        }
        self.nodes[y as usize].left = x;
        self.nodes[x as usize].parent = y;
    }

    fn rotate_right(&mut self, x: u32) {
        let y = self.nodes[x as usize].left;
        debug_assert_ne!(y, NIL);
        let y_right = self.nodes[y as usize].right;
        self.nodes[x as usize].left = y_right;
        if y_right != NIL {
            self.nodes[y_right as usize].parent = x;
        }
        let x_parent = self.nodes[x as usize].parent;
        self.nodes[y as usize].parent = x_parent;
        if x_parent == NIL {
            self.root = y;
        } else if self.nodes[x_parent as usize].right == x {
            self.nodes[x_parent as usize].right = y;
        } else {
            self.nodes[x_parent as usize].left = y;
        }
        self.nodes[y as usize].right = x;
        self.nodes[x as usize].parent = y;
    }

    /// Inserts `key`; duplicate keys are rejected (returns `false`).
    pub fn insert(&mut self, key: u64, addr: u64, record_addr: u64) -> bool {
        // Standard BST descent.
        let mut parent = NIL;
        let mut cur = self.root;
        while cur != NIL {
            parent = cur;
            let ck = self.nodes[cur as usize].key;
            if key == ck {
                return false;
            }
            cur = if key < ck {
                self.nodes[cur as usize].left
            } else {
                self.nodes[cur as usize].right
            };
        }
        let node = Node {
            key,
            left: NIL,
            right: NIL,
            parent,
            color: Color::Red,
            addr,
            record_addr,
        };
        let idx = if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = node;
            slot
        } else {
            self.nodes.push(node);
            self.nodes.len() as u32 - 1
        };
        self.len += 1;
        if parent == NIL {
            self.root = idx;
        } else if key < self.nodes[parent as usize].key {
            self.nodes[parent as usize].left = idx;
        } else {
            self.nodes[parent as usize].right = idx;
        }
        self.insert_fixup(idx);
        true
    }

    fn insert_fixup(&mut self, mut z: u32) {
        while self.color(self.nodes[z as usize].parent) == Color::Red {
            let p = self.nodes[z as usize].parent;
            let g = self.nodes[p as usize].parent;
            debug_assert_ne!(g, NIL, "red root parent implies grandparent");
            if p == self.nodes[g as usize].left {
                let uncle = self.nodes[g as usize].right;
                if self.color(uncle) == Color::Red {
                    self.nodes[p as usize].color = Color::Black;
                    self.nodes[uncle as usize].color = Color::Black;
                    self.nodes[g as usize].color = Color::Red;
                    z = g;
                } else {
                    if z == self.nodes[p as usize].right {
                        z = p;
                        self.rotate_left(z);
                    }
                    let p = self.nodes[z as usize].parent;
                    let g = self.nodes[p as usize].parent;
                    self.nodes[p as usize].color = Color::Black;
                    self.nodes[g as usize].color = Color::Red;
                    self.rotate_right(g);
                }
            } else {
                let uncle = self.nodes[g as usize].left;
                if self.color(uncle) == Color::Red {
                    self.nodes[p as usize].color = Color::Black;
                    self.nodes[uncle as usize].color = Color::Black;
                    self.nodes[g as usize].color = Color::Red;
                    z = g;
                } else {
                    if z == self.nodes[p as usize].left {
                        z = p;
                        self.rotate_right(z);
                    }
                    let p = self.nodes[z as usize].parent;
                    let g = self.nodes[p as usize].parent;
                    self.nodes[p as usize].color = Color::Black;
                    self.nodes[g as usize].color = Color::Red;
                    self.rotate_left(g);
                }
            }
        }
        let root = self.root;
        self.nodes[root as usize].color = Color::Black;
    }

    /// Removes `key` from the tree; returns its record address, or
    /// `None` if absent. Classic CLRS deletion with an explicit-parent
    /// adaptation for the arena's `NIL` sentinel.
    pub fn delete(&mut self, key: u64) -> Option<u64> {
        // Find the node.
        let mut z = self.root;
        while z != NIL {
            let k = self.nodes[z as usize].key;
            if key == k {
                break;
            }
            z = if key < k {
                self.nodes[z as usize].left
            } else {
                self.nodes[z as usize].right
            };
        }
        if z == NIL {
            return None;
        }
        let record = self.nodes[z as usize].record_addr;

        // y: the node actually spliced out; x: the child that replaces
        // it (may be NIL, with parent tracked explicitly).
        let mut y = z;
        let mut y_original_color = self.nodes[y as usize].color;
        let x;
        let x_parent;
        if self.nodes[z as usize].left == NIL {
            x = self.nodes[z as usize].right;
            x_parent = self.nodes[z as usize].parent;
            self.transplant(z, x);
        } else if self.nodes[z as usize].right == NIL {
            x = self.nodes[z as usize].left;
            x_parent = self.nodes[z as usize].parent;
            self.transplant(z, x);
        } else {
            // Successor: minimum of z's right subtree.
            y = self.nodes[z as usize].right;
            while self.nodes[y as usize].left != NIL {
                y = self.nodes[y as usize].left;
            }
            y_original_color = self.nodes[y as usize].color;
            x = self.nodes[y as usize].right;
            if self.nodes[y as usize].parent == z {
                x_parent = y;
            } else {
                x_parent = self.nodes[y as usize].parent;
                self.transplant(y, x);
                let zr = self.nodes[z as usize].right;
                self.nodes[y as usize].right = zr;
                self.nodes[zr as usize].parent = y;
            }
            self.transplant(z, y);
            let zl = self.nodes[z as usize].left;
            self.nodes[y as usize].left = zl;
            self.nodes[zl as usize].parent = y;
            self.nodes[y as usize].color = self.nodes[z as usize].color;
        }
        if y_original_color == Color::Black {
            self.delete_fixup(x, x_parent);
        }
        self.free.push(z);
        self.len -= 1;
        Some(record)
    }

    /// Replaces the subtree rooted at `u` with the one rooted at `v`
    /// (`v` may be NIL).
    fn transplant(&mut self, u: u32, v: u32) {
        let p = self.nodes[u as usize].parent;
        if p == NIL {
            self.root = v;
        } else if self.nodes[p as usize].left == u {
            self.nodes[p as usize].left = v;
        } else {
            self.nodes[p as usize].right = v;
        }
        if v != NIL {
            self.nodes[v as usize].parent = p;
        }
    }

    /// Restores the red-black invariants after removing a black node;
    /// `x` is the doubly-black node (possibly NIL) and `parent` its
    /// position's parent.
    fn delete_fixup(&mut self, mut x: u32, mut parent: u32) {
        while x != self.root && self.color(x) == Color::Black {
            if parent == NIL {
                break;
            }
            if x == self.nodes[parent as usize].left {
                let mut w = self.nodes[parent as usize].right;
                if self.color(w) == Color::Red {
                    self.nodes[w as usize].color = Color::Black;
                    self.nodes[parent as usize].color = Color::Red;
                    self.rotate_left(parent);
                    w = self.nodes[parent as usize].right;
                }
                if self.color(self.nodes[w as usize].left) == Color::Black
                    && self.color(self.nodes[w as usize].right) == Color::Black
                {
                    self.nodes[w as usize].color = Color::Red;
                    x = parent;
                    parent = self.nodes[x as usize].parent;
                } else {
                    if self.color(self.nodes[w as usize].right) == Color::Black {
                        let wl = self.nodes[w as usize].left;
                        if wl != NIL {
                            self.nodes[wl as usize].color = Color::Black;
                        }
                        self.nodes[w as usize].color = Color::Red;
                        self.rotate_right(w);
                        w = self.nodes[parent as usize].right;
                    }
                    self.nodes[w as usize].color = self.nodes[parent as usize].color;
                    self.nodes[parent as usize].color = Color::Black;
                    let wr = self.nodes[w as usize].right;
                    if wr != NIL {
                        self.nodes[wr as usize].color = Color::Black;
                    }
                    self.rotate_left(parent);
                    x = self.root;
                    break;
                }
            } else {
                let mut w = self.nodes[parent as usize].left;
                if self.color(w) == Color::Red {
                    self.nodes[w as usize].color = Color::Black;
                    self.nodes[parent as usize].color = Color::Red;
                    self.rotate_right(parent);
                    w = self.nodes[parent as usize].left;
                }
                if self.color(self.nodes[w as usize].left) == Color::Black
                    && self.color(self.nodes[w as usize].right) == Color::Black
                {
                    self.nodes[w as usize].color = Color::Red;
                    x = parent;
                    parent = self.nodes[x as usize].parent;
                } else {
                    if self.color(self.nodes[w as usize].left) == Color::Black {
                        let wr = self.nodes[w as usize].right;
                        if wr != NIL {
                            self.nodes[wr as usize].color = Color::Black;
                        }
                        self.nodes[w as usize].color = Color::Red;
                        self.rotate_left(w);
                        w = self.nodes[parent as usize].left;
                    }
                    self.nodes[w as usize].color = self.nodes[parent as usize].color;
                    self.nodes[parent as usize].color = Color::Black;
                    let wl = self.nodes[w as usize].left;
                    if wl != NIL {
                        self.nodes[wl as usize].color = Color::Black;
                    }
                    self.rotate_right(parent);
                    x = self.root;
                    break;
                }
            }
        }
        if x != NIL {
            self.nodes[x as usize].color = Color::Black;
        }
    }

    /// Descends to `key`, pushing one read per visited node. Returns the
    /// record address if found.
    pub fn lookup_trace(&self, key: u64, out: &mut Vec<MemoryAccess>) -> Option<u64> {
        let mut cur = self.root;
        while cur != NIL {
            let node = &self.nodes[cur as usize];
            out.push(MemoryAccess::read(node.addr));
            if key == node.key {
                return Some(node.record_addr);
            }
            cur = if key < node.key { node.left } else { node.right };
        }
        None
    }

    /// Tree height (longest root-to-leaf path, in nodes).
    pub fn height(&self) -> usize {
        fn depth(arena: &RbArena, n: u32) -> usize {
            if n == NIL {
                0
            } else {
                1 + depth(arena, arena.nodes[n as usize].left)
                    .max(depth(arena, arena.nodes[n as usize].right))
            }
        }
        depth(self, self.root)
    }

    /// Validates the red-black invariants; returns the black height.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn validate(&self) -> usize {
        fn walk(arena: &RbArena, n: u32, lo: Option<u64>, hi: Option<u64>) -> usize {
            if n == NIL {
                return 1; // NIL leaves are black
            }
            let node = &arena.nodes[n as usize];
            if let Some(lo) = lo {
                assert!(node.key > lo, "BST order violated at key {}", node.key);
            }
            if let Some(hi) = hi {
                assert!(node.key < hi, "BST order violated at key {}", node.key);
            }
            if node.color == Color::Red {
                assert_eq!(
                    arena.color(node.left),
                    Color::Black,
                    "red node {} has red left child",
                    node.key
                );
                assert_eq!(
                    arena.color(node.right),
                    Color::Black,
                    "red node {} has red right child",
                    node.key
                );
            }
            let bl = walk(arena, node.left, lo, Some(node.key));
            let br = walk(arena, node.right, Some(node.key), hi);
            assert_eq!(bl, br, "black height mismatch under key {}", node.key);
            bl + usize::from(node.color == Color::Black)
        }
        if self.root == NIL {
            return 1;
        }
        assert_eq!(self.color(self.root), Color::Black, "root must be black");
        walk(self, self.root, None, None)
    }
}

impl Default for RbArena {
    fn default() -> Self {
        Self::new()
    }
}

/// The Red-Black Tree workload engine.
#[derive(Debug)]
pub struct RbTree {
    arena: RbArena,
    chooser: KeyChooser,
    compute_ns: u64,
    lookups_per_job: usize,
    write_fraction: f64,
    /// Fraction of operations that delete + reinsert their key,
    /// exercising rebalancing under load.
    churn_fraction: f64,
    node_base: u64,
    record_base: u64,
    record_bytes: u64,
    n: u64,
}

impl RbTree {
    /// Builds the tree by inserting all keys in shuffled order.
    ///
    /// Nodes and records live in key-indexed regions (node of key `k` at
    /// `node_base + k*64`), the layout a key-partitioned memory pool
    /// produces: in-order-adjacent keys — which share the tail of every
    /// descent path — share pages, giving the index the spatial locality
    /// the paper's page-granularity cache exploits (§II-A).
    pub fn new(params: &WorkloadParams, seed: u64) -> Self {
        let n = params.num_records();
        let space = AddressSpace::new(params.dataset_bytes);
        let mut alloc = SimAlloc::sequential(space);
        let node_base = alloc.alloc(n * NODE_BYTES);
        let record_base = alloc.alloc(n * params.record_bytes);
        let mut rng = SimRng::new(seed);

        let mut keys: Vec<u64> = (0..n).collect();
        rng.shuffle(&mut keys);

        let mut arena = RbArena::new();
        for key in keys {
            let node_addr = node_base + key * NODE_BYTES;
            let record_addr = record_base + key * params.record_bytes;
            let inserted = arena.insert(key, node_addr, record_addr);
            debug_assert!(inserted);
        }

        RbTree {
            arena,
            chooser: KeyChooser::new(
                n,
                params.zipf_theta,
                (PAGE_SIZE / params.record_bytes).max(1),
                params.effective_reuse(0.5), // deep descents are cold-heavy
            ),
            compute_ns: params.compute_ns_per_op,
            lookups_per_job: 6,
            write_fraction: 0.05,
            churn_fraction: 0.02,
            node_base,
            record_base,
            record_bytes: params.record_bytes,
            n,
        }
    }

    /// The underlying tree (exposed for invariant tests).
    pub fn arena(&self) -> &RbArena {
        &self.arena
    }
}

impl WorkloadEngine for RbTree {
    fn next_job(&mut self, rng: &mut SimRng) -> JobSpec {
        let mut ops = Vec::with_capacity(self.lookups_per_job);
        for _ in 0..self.lookups_per_job {
            let key = self.chooser.next(rng) % self.n;
            let mut accesses = Vec::with_capacity(32);
            if rng.gen_bool(self.churn_fraction) {
                // Index churn: delete the key and reinsert it. The tree
                // genuinely rebalances; the trace is the descent (reads)
                // plus stores to the rewritten path tail and the record.
                let record = self
                    .arena
                    .lookup_trace(key, &mut accesses)
                    .expect("all keys resident");
                self.arena.delete(key);
                self.arena.insert(
                    key,
                    self.node_base + key * NODE_BYTES,
                    self.record_base + key * self.record_bytes,
                );
                let rewritten: Vec<u64> =
                    accesses.iter().rev().take(3).map(|a| a.addr).collect();
                for addr in rewritten {
                    accesses.push(MemoryAccess::write(addr));
                }
                accesses.push(MemoryAccess::write(record));
            } else {
                let write = rng.gen_bool(self.write_fraction);
                let record = self
                    .arena
                    .lookup_trace(key, &mut accesses)
                    .expect("all keys were inserted");
                touch_record(&mut accesses, record, 2, write);
            }
            ops.push(Operation::new(self.compute_ns, accesses));
        }
        JobSpec::new(ops)
    }

    fn fill_job(&mut self, buf: &mut JobBuf, rng: &mut SimRng) {
        buf.clear();
        for _ in 0..self.lookups_per_job {
            let key = self.chooser.next(rng) % self.n;
            let start = buf.mark();
            if rng.gen_bool(self.churn_fraction) {
                let record = self
                    .arena
                    .lookup_trace(key, buf.accesses_mut())
                    .expect("all keys resident");
                self.arena.delete(key);
                self.arena.insert(
                    key,
                    self.node_base + key * NODE_BYTES,
                    self.record_base + key * self.record_bytes,
                );
                // Rewritten path tail: the last (up to) three nodes of
                // *this op's* descent — bounded by `start` so the shared
                // slab never bleeds into an earlier op's accesses.
                let descent = &buf.accesses()[start as usize..];
                let m = descent.len().min(3);
                let mut rewritten = [0u64; 3];
                for (dst, a) in rewritten.iter_mut().zip(descent.iter().rev()) {
                    *dst = a.addr;
                }
                for &addr in &rewritten[..m] {
                    buf.push(MemoryAccess::write(addr));
                }
                buf.push(MemoryAccess::write(record));
            } else {
                let write = rng.gen_bool(self.write_fraction);
                let record = self
                    .arena
                    .lookup_trace(key, buf.accesses_mut())
                    .expect("all keys were inserted");
                touch_record(buf.accesses_mut(), record, 2, write);
            }
            buf.finish_op(self.compute_ns, start);
        }
    }

    fn name(&self) -> &'static str {
        "RBT"
    }

    fn threads_per_core_hint(&self) -> usize {
        48
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_tree_maintains_invariants() {
        let mut arena = RbArena::new();
        for key in [50u64, 20, 70, 10, 30, 60, 80, 25, 27, 26] {
            assert!(arena.insert(key, key * 64, key * 1024));
            arena.validate();
        }
        assert_eq!(arena.len(), 10);
        assert!(!arena.insert(50, 0, 0), "duplicate must be rejected");
    }

    #[test]
    fn sequential_insert_stays_balanced() {
        let mut arena = RbArena::new();
        for key in 0..4096u64 {
            arena.insert(key, key * 64, key * 1024);
        }
        arena.validate();
        let h = arena.height();
        // RB trees guarantee height <= 2*log2(n+1) = 24 for n = 4096.
        assert!(h <= 24, "height {h} too large");
    }

    #[test]
    fn delete_leaf_and_internal_nodes() {
        let mut arena = RbArena::new();
        for key in [50u64, 20, 70, 10, 30, 60, 80, 25, 27, 26] {
            arena.insert(key, key * 64, key * 1024);
        }
        // Leaf delete.
        assert_eq!(arena.delete(10), Some(10 * 1024));
        arena.validate();
        // Two-children delete (internal).
        assert_eq!(arena.delete(50), Some(50 * 1024));
        arena.validate();
        assert_eq!(arena.len(), 8);
        // Deleted keys are gone; the rest survive.
        let mut trace = Vec::new();
        assert_eq!(arena.lookup_trace(50, &mut trace), None);
        assert_eq!(arena.lookup_trace(27, &mut trace), Some(27 * 1024));
        // Double delete is a no-op.
        assert_eq!(arena.delete(50), None);
    }

    #[test]
    fn delete_everything_then_reinsert() {
        let mut arena = RbArena::new();
        for key in 0..512u64 {
            arena.insert(key, key * 64, key);
        }
        for key in (0..512u64).rev() {
            assert_eq!(arena.delete(key), Some(key));
            if key % 64 == 0 {
                arena.validate();
            }
        }
        assert!(arena.is_empty());
        // Freed slots are reused.
        for key in 0..512u64 {
            assert!(arena.insert(key, key * 64, key));
        }
        arena.validate();
        assert_eq!(arena.len(), 512);
    }

    #[test]
    fn interleaved_insert_delete_keeps_invariants() {
        let mut arena = RbArena::new();
        let mut x = 9u64;
        let mut live = std::collections::HashSet::new();
        for round in 0..4_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (x >> 33) % 700;
            if live.contains(&key) {
                assert_eq!(arena.delete(key), Some(key));
                live.remove(&key);
            } else {
                assert!(arena.insert(key, key * 64, key));
                live.insert(key);
            }
            if round % 500 == 0 {
                arena.validate();
            }
        }
        arena.validate();
        assert_eq!(arena.len(), live.len());
        let mut trace = Vec::new();
        for &key in &live {
            trace.clear();
            assert_eq!(arena.lookup_trace(key, &mut trace), Some(key));
        }
    }

    #[test]
    fn lookup_trace_finds_all_keys() {
        let mut arena = RbArena::new();
        for key in [5u64, 3, 8, 1, 4, 7, 9] {
            arena.insert(key, 1000 + key, 2000 + key);
        }
        for key in [5u64, 3, 8, 1, 4, 7, 9] {
            let mut trace = Vec::new();
            let rec = arena.lookup_trace(key, &mut trace);
            assert_eq!(rec, Some(2000 + key));
            assert!(!trace.is_empty());
            // Path length bounded by height.
            assert!(trace.len() <= arena.height());
        }
        let mut trace = Vec::new();
        assert_eq!(arena.lookup_trace(42, &mut trace), None);
    }

    #[test]
    fn engine_jobs_are_pointer_chases() {
        let mut e = RbTree::new(&WorkloadParams::tiny_for_tests(), 13);
        e.arena().validate();
        let mut rng = SimRng::new(14);
        let job = e.next_job(&mut rng);
        // Each lookup should touch at least a few nodes (tree of ~28k keys
        // has height ~15+) plus the record.
        let per_op = job.total_accesses() / job.ops.len();
        assert!(per_op >= 8, "only {per_op} accesses per lookup");
    }

    #[test]
    fn tree_height_logarithmic_at_scale() {
        let e = RbTree::new(&WorkloadParams::tiny_for_tests(), 15);
        let n = e.arena().len() as f64;
        let h = e.arena().height() as f64;
        assert!(h <= 2.1 * n.log2(), "height {h} vs n {n}");
    }
}
