//! Silo workload from Tailbench (§V-A): OLTP transactions over a
//! Masstree-style index with optimistic concurrency control.
//!
//! Each transaction performs a read set of tree lookups, a small write
//! set, then a commit phase (validation compute + version writes to the
//! touched record headers) — the access shape of Silo's OCC protocol.

use astriflash_sim::SimRng;

use crate::address_space::{AddressSpace, SimAlloc, PAGE_SIZE};
use crate::engines::btree_index::BPlusTree;
use crate::engines::touch_record;
use crate::job::{JobBuf, JobSpec, MemoryAccess, Operation, WorkloadEngine};
use crate::kind::WorkloadParams;
use crate::popularity::KeyChooser;

const NODE_BYTES: u64 = 256;

/// The Silo workload engine.
#[derive(Debug)]
pub struct Silo {
    tree: BPlusTree,
    chooser: KeyChooser,
    compute_ns: u64,
    n: u64,
}

impl Silo {
    /// Builds the index over `params.num_records()` keys.
    pub fn new(params: &WorkloadParams, seed: u64) -> Self {
        let n = params.num_records();
        let space = AddressSpace::new(params.dataset_bytes);
        let mut alloc = SimAlloc::scattered(space, seed ^ 0x51_10);
        let record_bytes = params.record_bytes;

        let mut tree = BPlusTree::new(&mut |_| alloc.alloc(NODE_BYTES));
        for key in 0..n {
            let record = alloc.alloc(record_bytes);
            tree.insert(key, record, &mut |_| alloc.alloc(NODE_BYTES));
        }

        Silo {
            tree,
            chooser: KeyChooser::new(
                n,
                params.zipf_theta,
                (PAGE_SIZE / params.record_bytes).max(1),
                params.effective_reuse(0.75),
            ),
            compute_ns: params.compute_ns_per_op,
            n,
        }
    }

    /// The underlying index (exposed for invariant tests).
    pub fn tree(&self) -> &BPlusTree {
        &self.tree
    }
}

impl WorkloadEngine for Silo {
    fn next_job(&mut self, rng: &mut SimRng) -> JobSpec {
        let read_set = 2 + rng.gen_range(5) as usize; // 2..=6 reads
        let write_set = rng.gen_range(3) as usize; // 0..=2 writes
        let mut ops = Vec::with_capacity(read_set + write_set + 1);
        let mut written_records = Vec::with_capacity(write_set);

        for _ in 0..read_set {
            let key = self.chooser.next(rng) % self.n;
            let mut accesses = Vec::with_capacity(8);
            let record = self
                .tree
                .lookup_trace(key, &mut accesses)
                .expect("all keys inserted");
            touch_record(&mut accesses, record, 2, false);
            ops.push(Operation::new(self.compute_ns, accesses));
        }
        for _ in 0..write_set {
            let key = self.chooser.next(rng) % self.n;
            let mut accesses = Vec::with_capacity(8);
            let record = self
                .tree
                .lookup_trace(key, &mut accesses)
                .expect("all keys inserted");
            // Buffered write: read the record now, install at commit.
            touch_record(&mut accesses, record, 2, false);
            written_records.push(record);
            ops.push(Operation::new(self.compute_ns, accesses));
        }

        // Commit: validate the read set (compute), then install writes —
        // one version-word store per written record (Silo's TID write).
        let mut commit = Vec::with_capacity(write_set);
        for record in written_records {
            commit.push(MemoryAccess::write(record));
        }
        ops.push(Operation::new(
            self.compute_ns * (1 + read_set as u64 / 2),
            commit,
        ));
        JobSpec::new(ops)
    }

    fn fill_job(&mut self, buf: &mut JobBuf, rng: &mut SimRng) {
        buf.clear();
        let read_set = 2 + rng.gen_range(5) as usize; // 2..=6 reads
        let write_set = rng.gen_range(3) as usize; // 0..=2 writes
        let mut written_records = [0u64; 2];

        for _ in 0..read_set {
            let key = self.chooser.next(rng) % self.n;
            let start = buf.mark();
            let record = self
                .tree
                .lookup_trace(key, buf.accesses_mut())
                .expect("all keys inserted");
            touch_record(buf.accesses_mut(), record, 2, false);
            buf.finish_op(self.compute_ns, start);
        }
        for written in written_records.iter_mut().take(write_set) {
            let key = self.chooser.next(rng) % self.n;
            let start = buf.mark();
            let record = self
                .tree
                .lookup_trace(key, buf.accesses_mut())
                .expect("all keys inserted");
            // Buffered write: read the record now, install at commit.
            touch_record(buf.accesses_mut(), record, 2, false);
            *written = record;
            buf.finish_op(self.compute_ns, start);
        }

        // Commit: validate the read set (compute), then install writes.
        let start = buf.mark();
        for &record in &written_records[..write_set] {
            buf.push(MemoryAccess::write(record));
        }
        buf.finish_op(self.compute_ns * (1 + read_set as u64 / 2), start);
    }

    fn name(&self) -> &'static str {
        "Silo"
    }

    fn threads_per_core_hint(&self) -> usize {
        40
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_valid_after_build() {
        let e = Silo::new(&WorkloadParams::tiny_for_tests(), 51);
        assert_eq!(e.tree().validate(), e.tree().len());
    }

    #[test]
    fn txns_have_read_and_commit_phases() {
        let mut e = Silo::new(&WorkloadParams::tiny_for_tests(), 52);
        let mut rng = SimRng::new(53);
        let job = e.next_job(&mut rng);
        // At least 2 reads + commit op.
        assert!(job.ops.len() >= 3);
        // Commit op is last and has the validation compute.
        let commit = job.ops.last().unwrap();
        assert!(commit.compute_ns >= e.compute_ns);
    }

    #[test]
    fn writes_only_at_commit() {
        let mut e = Silo::new(&WorkloadParams::tiny_for_tests(), 54);
        let mut rng = SimRng::new(55);
        for _ in 0..50 {
            let job = e.next_job(&mut rng);
            let (body, commit) = job.ops.split_at(job.ops.len() - 1);
            assert!(
                body.iter().all(|o| o.accesses.iter().all(|a| !a.is_write)),
                "writes must be buffered until commit"
            );
            // Commit writes equal the write set size (possibly 0).
            assert!(commit[0].accesses.iter().all(|a| a.is_write));
        }
    }

    #[test]
    fn lookups_traverse_the_tree() {
        let mut e = Silo::new(&WorkloadParams::tiny_for_tests(), 56);
        let height = e.tree().height();
        let mut rng = SimRng::new(57);
        let job = e.next_job(&mut rng);
        let first_read = &job.ops[0];
        assert!(first_read.accesses.len() >= height + 2);
    }
}
