//! TPC-C workload (§V-A): "'neworder' transactions for items in a
//! database". The paper notes TPCC is its most computationally intensive
//! workload (§VI-A); we model the five standard transactions with the
//! standard mix and give them the heaviest compute budget.

use astriflash_sim::SimRng;

use crate::address_space::{AddressSpace, SimAlloc, PAGE_SIZE};
use crate::engines::touch_record;
use crate::job::{JobBuf, JobSpec, MemoryAccess, Operation, WorkloadEngine};
use crate::kind::WorkloadParams;
use crate::popularity::KeyChooser;

const DISTRICTS_PER_WH: u64 = 10;
const ROW_BYTES: u64 = 128;
const ORDER_LINE_BYTES: u64 = 64;

/// TPC-C transaction types with the standard mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpccTxn {
    /// New-order (≈45 %).
    NewOrder,
    /// Payment (≈43 %).
    Payment,
    /// Order-status (4 %).
    OrderStatus,
    /// Delivery (4 %).
    Delivery,
    /// Stock-level (4 %).
    StockLevel,
}

impl TpccTxn {
    /// Draws from the standard mix.
    pub fn sample(rng: &mut SimRng) -> TpccTxn {
        match rng.gen_range(100) {
            0..=44 => TpccTxn::NewOrder,
            45..=87 => TpccTxn::Payment,
            88..=91 => TpccTxn::OrderStatus,
            92..=95 => TpccTxn::Delivery,
            _ => TpccTxn::StockLevel,
        }
    }
}

/// The TPC-C workload engine.
///
/// The paper's TPCC runs 'neworder' transactions (§V-A); that is the
/// default here. [`Tpcc::with_full_mix`] enables the five-transaction
/// TPC-C mix as an extension.
#[derive(Debug)]
pub struct Tpcc {
    full_mix: bool,
    customer_chooser: KeyChooser,
    item_chooser: KeyChooser,
    compute_ns: u64,
    num_warehouses: u64,
    customers_per_district: u64,
    items: u64,
    warehouse_base: u64,
    district_base: u64,
    customer_base: u64,
    customer_bytes: u64,
    item_base: u64,
    stock_base: u64,
    order_line_base: u64,
    num_order_lines: u64,
    next_order_line: u64,
}

impl Tpcc {
    /// Sizes the warehouse count to the dataset and lays out the tables.
    pub fn new(params: &WorkloadParams, seed: u64) -> Self {
        let space = AddressSpace::new(params.dataset_bytes);
        let mut alloc = SimAlloc::sequential(space);
        let customer_bytes = params.record_bytes;

        // TPC-C nominal cardinalities (100k items, 3000 customers per
        // district) scaled down so at least one warehouse fits any
        // dataset. The shared item table takes at most 1/8 of the space.
        let items = (params.dataset_bytes / 8 / ROW_BYTES).clamp(256, 100_000);
        let customers_per_district = (params.dataset_bytes
            / (8 * DISTRICTS_PER_WH * customer_bytes))
            .clamp(64, 3000);
        let stock_per_wh = items;

        // Bytes per warehouse: rows + customers + stock; plus the item
        // table and an order-line log taking ~1/8 of the dataset.
        let per_wh = ROW_BYTES
            + DISTRICTS_PER_WH * ROW_BYTES
            + DISTRICTS_PER_WH * customers_per_district * customer_bytes
            + stock_per_wh * ROW_BYTES;
        let fixed = items * ROW_BYTES + params.dataset_bytes / 8;
        let num_warehouses = ((params.dataset_bytes.saturating_sub(fixed)) / per_wh).max(1);

        let warehouse_base = alloc.alloc(num_warehouses * ROW_BYTES);
        let district_base = alloc.alloc(num_warehouses * DISTRICTS_PER_WH * ROW_BYTES);
        let customer_base = alloc
            .alloc(num_warehouses * DISTRICTS_PER_WH * customers_per_district * customer_bytes);
        let item_base = alloc.alloc(items * ROW_BYTES);
        let stock_base = alloc.alloc(num_warehouses * stock_per_wh * ROW_BYTES);
        let ol_bytes = alloc.remaining_bytes() / 2;
        let num_order_lines = (ol_bytes / ORDER_LINE_BYTES).max(1024);
        let order_line_base = alloc.alloc(num_order_lines * ORDER_LINE_BYTES);
        let _ = seed;

        let num_customers = num_warehouses * DISTRICTS_PER_WH * customers_per_district;
        Tpcc {
            customer_chooser: KeyChooser::new(
                num_customers,
                params.zipf_theta,
                (PAGE_SIZE / customer_bytes).max(1),
                params.reuse_probability,
            ),
            item_chooser: KeyChooser::new(
                items,
                params.zipf_theta,
                (PAGE_SIZE / ROW_BYTES).max(1),
                params.reuse_probability,
            ),
            compute_ns: params.compute_ns_per_op,
            num_warehouses,
            customers_per_district,
            items,
            warehouse_base,
            district_base,
            customer_base,
            customer_bytes,
            item_base,
            stock_base,
            order_line_base,
            num_order_lines,
            next_order_line: 0,
            full_mix: false,
        }
    }

    /// Enables the full five-transaction TPC-C mix instead of the
    /// paper's neworder-only workload.
    pub fn with_full_mix(mut self) -> Self {
        self.full_mix = true;
        self
    }

    /// Number of warehouses the dataset holds.
    pub fn num_warehouses(&self) -> u64 {
        self.num_warehouses
    }

    fn warehouse_addr(&self, w: u64) -> u64 {
        self.warehouse_base + w * ROW_BYTES
    }

    fn district_addr(&self, w: u64, d: u64) -> u64 {
        self.district_base + (w * DISTRICTS_PER_WH + d) * ROW_BYTES
    }

    fn customer_addr(&self, global_c: u64) -> u64 {
        self.customer_base + global_c * self.customer_bytes
    }

    fn item_addr(&self, i: u64) -> u64 {
        self.item_base + i * ROW_BYTES
    }

    fn stock_addr(&self, w: u64, i: u64) -> u64 {
        self.stock_base + (w * self.items + i) * ROW_BYTES
    }

    /// Appends an order line, returning its address (circular log).
    fn append_order_line(&mut self) -> u64 {
        let addr = self.order_line_base + self.next_order_line * ORDER_LINE_BYTES;
        self.next_order_line = (self.next_order_line + 1) % self.num_order_lines;
        addr
    }

    fn pick_customer(&mut self, rng: &mut SimRng) -> (u64, u64, u64) {
        let global_c = self.customer_chooser.next(rng);
        let w = global_c / (DISTRICTS_PER_WH * self.customers_per_district);
        let d = (global_c / self.customers_per_district) % DISTRICTS_PER_WH;
        (w, d, global_c)
    }

    fn new_order(&mut self, rng: &mut SimRng) -> Vec<Operation> {
        let (w, d, c) = self.pick_customer(rng);
        let mut ops = Vec::with_capacity(4);

        let mut head = Vec::with_capacity(6);
        head.push(MemoryAccess::read(self.warehouse_addr(w)));
        touch_record(&mut head, self.district_addr(w, d), 1, true); // next_o_id++
        touch_record(&mut head, self.customer_addr(c), 2, false);
        ops.push(Operation::new(self.compute_ns * 3, head));

        let ol_cnt = 5 + rng.gen_range(11); // 5..=15 items
        for _ in 0..ol_cnt {
            let i = self.item_chooser.next(rng);
            let mut line = Vec::with_capacity(4);
            line.push(MemoryAccess::read(self.item_addr(i)));
            touch_record(&mut line, self.stock_addr(w, i), 1, true); // qty--
            line.push(MemoryAccess::write(self.append_order_line()));
            ops.push(Operation::new(self.compute_ns * 2, line));
        }
        ops.push(Operation::compute(self.compute_ns * 2)); // commit
        ops
    }

    fn payment(&mut self, rng: &mut SimRng) -> Vec<Operation> {
        let (w, d, c) = self.pick_customer(rng);
        let mut accesses = Vec::with_capacity(8);
        touch_record(&mut accesses, self.warehouse_addr(w), 1, true); // ytd
        touch_record(&mut accesses, self.district_addr(w, d), 1, true);
        touch_record(&mut accesses, self.customer_addr(c), 2, true); // balance
        accesses.push(MemoryAccess::write(self.append_order_line())); // history
        vec![
            Operation::new(self.compute_ns * 3, accesses),
            Operation::compute(self.compute_ns * 2),
        ]
    }

    fn order_status(&mut self, rng: &mut SimRng) -> Vec<Operation> {
        let (_, _, c) = self.pick_customer(rng);
        let mut accesses = Vec::with_capacity(12);
        touch_record(&mut accesses, self.customer_addr(c), 2, false);
        // Read the customer's most recent order lines (a recent window of
        // the circular log).
        let recent = rng.gen_range(self.num_order_lines.min(1024)).min(self.next_order_line);
        let start = self.next_order_line - recent;
        for i in 0..8 {
            let slot = (start + i) % self.num_order_lines;
            accesses.push(MemoryAccess::read(
                self.order_line_base + slot * ORDER_LINE_BYTES,
            ));
        }
        vec![Operation::new(self.compute_ns * 2, accesses)]
    }

    fn delivery(&mut self, rng: &mut SimRng) -> Vec<Operation> {
        let w = rng.gen_range(self.num_warehouses);
        let mut ops = Vec::with_capacity(DISTRICTS_PER_WH as usize);
        for d in 0..DISTRICTS_PER_WH {
            let mut accesses = Vec::with_capacity(4);
            touch_record(&mut accesses, self.district_addr(w, d), 1, false);
            // Deliver the oldest order: write the order line + the
            // customer's balance.
            accesses.push(MemoryAccess::write(self.append_order_line()));
            let c = w * DISTRICTS_PER_WH * self.customers_per_district
                + d * self.customers_per_district
                + rng.gen_range(self.customers_per_district);
            touch_record(&mut accesses, self.customer_addr(c), 1, true);
            ops.push(Operation::new(self.compute_ns * 2, accesses));
        }
        ops
    }

    fn stock_level(&mut self, rng: &mut SimRng) -> Vec<Operation> {
        let w = rng.gen_range(self.num_warehouses);
        let d = rng.gen_range(DISTRICTS_PER_WH);
        let mut accesses = Vec::with_capacity(24);
        touch_record(&mut accesses, self.district_addr(w, d), 1, false);
        for _ in 0..20 {
            let i = self.item_chooser.next(rng);
            accesses.push(MemoryAccess::read(self.stock_addr(w, i)));
        }
        vec![Operation::new(self.compute_ns * 3, accesses)]
    }

    // Flat twins of the transaction builders. Each must draw from `rng`
    // and advance the order-line log in the identical sequence as its
    // nested counterpart above; the differential suite in
    // crates/workloads/tests/flat_job_differential.rs enforces this.

    fn new_order_flat(&mut self, rng: &mut SimRng, buf: &mut JobBuf) {
        let (w, d, c) = self.pick_customer(rng);

        let start = buf.mark();
        buf.push(MemoryAccess::read(self.warehouse_addr(w)));
        touch_record(buf.accesses_mut(), self.district_addr(w, d), 1, true); // next_o_id++
        touch_record(buf.accesses_mut(), self.customer_addr(c), 2, false);
        buf.finish_op(self.compute_ns * 3, start);

        let ol_cnt = 5 + rng.gen_range(11); // 5..=15 items
        for _ in 0..ol_cnt {
            let i = self.item_chooser.next(rng);
            let start = buf.mark();
            buf.push(MemoryAccess::read(self.item_addr(i)));
            touch_record(buf.accesses_mut(), self.stock_addr(w, i), 1, true); // qty--
            let line = self.append_order_line();
            buf.push(MemoryAccess::write(line));
            buf.finish_op(self.compute_ns * 2, start);
        }
        buf.push_compute(self.compute_ns * 2); // commit
    }

    fn payment_flat(&mut self, rng: &mut SimRng, buf: &mut JobBuf) {
        let (w, d, c) = self.pick_customer(rng);
        let start = buf.mark();
        touch_record(buf.accesses_mut(), self.warehouse_addr(w), 1, true); // ytd
        touch_record(buf.accesses_mut(), self.district_addr(w, d), 1, true);
        touch_record(buf.accesses_mut(), self.customer_addr(c), 2, true); // balance
        let history = self.append_order_line();
        buf.push(MemoryAccess::write(history));
        buf.finish_op(self.compute_ns * 3, start);
        buf.push_compute(self.compute_ns * 2);
    }

    fn order_status_flat(&mut self, rng: &mut SimRng, buf: &mut JobBuf) {
        let (_, _, c) = self.pick_customer(rng);
        let start = buf.mark();
        touch_record(buf.accesses_mut(), self.customer_addr(c), 2, false);
        let recent = rng.gen_range(self.num_order_lines.min(1024)).min(self.next_order_line);
        let first = self.next_order_line - recent;
        for i in 0..8 {
            let slot = (first + i) % self.num_order_lines;
            buf.push(MemoryAccess::read(
                self.order_line_base + slot * ORDER_LINE_BYTES,
            ));
        }
        buf.finish_op(self.compute_ns * 2, start);
    }

    fn delivery_flat(&mut self, rng: &mut SimRng, buf: &mut JobBuf) {
        let w = rng.gen_range(self.num_warehouses);
        for d in 0..DISTRICTS_PER_WH {
            let start = buf.mark();
            touch_record(buf.accesses_mut(), self.district_addr(w, d), 1, false);
            let line = self.append_order_line();
            buf.push(MemoryAccess::write(line));
            let c = w * DISTRICTS_PER_WH * self.customers_per_district
                + d * self.customers_per_district
                + rng.gen_range(self.customers_per_district);
            touch_record(buf.accesses_mut(), self.customer_addr(c), 1, true);
            buf.finish_op(self.compute_ns * 2, start);
        }
    }

    fn stock_level_flat(&mut self, rng: &mut SimRng, buf: &mut JobBuf) {
        let w = rng.gen_range(self.num_warehouses);
        let d = rng.gen_range(DISTRICTS_PER_WH);
        let start = buf.mark();
        touch_record(buf.accesses_mut(), self.district_addr(w, d), 1, false);
        for _ in 0..20 {
            let i = self.item_chooser.next(rng);
            buf.push(MemoryAccess::read(self.stock_addr(w, i)));
        }
        buf.finish_op(self.compute_ns * 3, start);
    }
}

impl WorkloadEngine for Tpcc {
    fn next_job(&mut self, rng: &mut SimRng) -> JobSpec {
        if !self.full_mix {
            return JobSpec::new(self.new_order(rng));
        }
        let ops = match TpccTxn::sample(rng) {
            TpccTxn::NewOrder => self.new_order(rng),
            TpccTxn::Payment => self.payment(rng),
            TpccTxn::OrderStatus => self.order_status(rng),
            TpccTxn::Delivery => self.delivery(rng),
            TpccTxn::StockLevel => self.stock_level(rng),
        };
        JobSpec::new(ops)
    }

    fn fill_job(&mut self, buf: &mut JobBuf, rng: &mut SimRng) {
        buf.clear();
        if !self.full_mix {
            self.new_order_flat(rng, buf);
            return;
        }
        match TpccTxn::sample(rng) {
            TpccTxn::NewOrder => self.new_order_flat(rng, buf),
            TpccTxn::Payment => self.payment_flat(rng, buf),
            TpccTxn::OrderStatus => self.order_status_flat(rng, buf),
            TpccTxn::Delivery => self.delivery_flat(rng, buf),
            TpccTxn::StockLevel => self.stock_level_flat(rng, buf),
        }
    }

    fn name(&self) -> &'static str {
        "TPCC"
    }

    fn threads_per_core_hint(&self) -> usize {
        32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Tpcc {
        // TPCC needs a bigger floor than the other tiny configs because a
        // single warehouse is ~16 MB.
        let params = WorkloadParams {
            dataset_bytes: 64 << 20,
            ..WorkloadParams::tiny_for_tests()
        };
        Tpcc::new(&params, 41)
    }

    #[test]
    fn tables_fit_and_warehouses_positive() {
        let e = engine();
        assert!(e.num_warehouses() >= 1);
        assert!(e.order_line_base + e.num_order_lines * ORDER_LINE_BYTES <= 64 << 20);
    }

    #[test]
    fn new_order_touches_items_and_stock() {
        let mut e = engine();
        let mut rng = SimRng::new(42);
        let ops = e.new_order(&mut rng);
        // head + 5..15 lines + commit.
        assert!(ops.len() >= 7 && ops.len() <= 17, "got {}", ops.len());
        let writes: usize = ops
            .iter()
            .flat_map(|o| &o.accesses)
            .filter(|a| a.is_write)
            .count();
        // district + per-line (stock + order line).
        assert!(writes > 2 * 5);
    }

    #[test]
    fn order_line_log_wraps() {
        let mut e = engine();
        let first = e.append_order_line();
        for _ in 0..e.num_order_lines - 1 {
            e.append_order_line();
        }
        let wrapped = e.append_order_line();
        assert_eq!(first, wrapped);
    }

    #[test]
    fn all_txn_types_stay_in_bounds() {
        let mut e = engine();
        let mut rng = SimRng::new(43);
        for _ in 0..300 {
            let job = e.next_job(&mut rng);
            for a in job.accesses() {
                assert!(a.addr < 64 << 20, "access out of dataset: {:#x}", a.addr);
            }
        }
    }

    #[test]
    fn tpcc_is_compute_heavy() {
        let mut e = engine();
        let mut rng = SimRng::new(44);
        let total: u64 = (0..100).map(|_| e.next_job(&mut rng).total_compute_ns()).sum();
        let mean = total / 100;
        // Heavier than the base per-op compute by construction.
        assert!(mean > 500, "mean compute {mean}ns");
    }
}
