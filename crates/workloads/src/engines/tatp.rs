//! TATP telecom benchmark (§V-A): "'update subscriber data' … transactions
//! for items in a database".
//!
//! We implement the standard TATP transaction mix over its four tables
//! (SUBSCRIBER, ACCESS_INFO, SPECIAL_FACILITY, CALL_FORWARDING).
//! SUBSCRIBER is directly indexed by `s_id` (as in the real benchmark,
//! where `s_id` is dense); the child tables hang off the subscriber with
//! fixed fan-out. Subscriber popularity is scrambled-Zipfian.

use astriflash_sim::SimRng;

use crate::address_space::{AddressSpace, SimAlloc, PAGE_SIZE};
use crate::engines::touch_record;
use crate::job::{JobBuf, JobSpec, MemoryAccess, Operation, WorkloadEngine};
use crate::kind::WorkloadParams;
use crate::popularity::KeyChooser;

const AI_PER_SUB: u64 = 3; // ACCESS_INFO rows per subscriber
const SF_PER_SUB: u64 = 2; // SPECIAL_FACILITY rows per subscriber
const CF_PER_SF: u64 = 2; // CALL_FORWARDING rows per facility

/// TATP transaction types with their standard mix percentages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TatpTxn {
    /// Read the full subscriber row (35 %).
    GetSubscriberData,
    /// Read a special facility and its call-forwarding rows (10 %).
    GetNewDestination,
    /// Read one access-info row (35 %).
    GetAccessData,
    /// Update subscriber bits and a special-facility row (2 %).
    UpdateSubscriberData,
    /// Update the subscriber's VLR location (14 %).
    UpdateLocation,
    /// Read special facility, insert a call-forwarding row (2 %).
    InsertCallForwarding,
    /// Delete a call-forwarding row (2 %).
    DeleteCallForwarding,
}

impl TatpTxn {
    /// Draws a transaction type from the standard TATP mix.
    pub fn sample(rng: &mut SimRng) -> TatpTxn {
        let roll = rng.gen_range(100);
        match roll {
            0..=34 => TatpTxn::GetSubscriberData,
            35..=44 => TatpTxn::GetNewDestination,
            45..=79 => TatpTxn::GetAccessData,
            80..=81 => TatpTxn::UpdateSubscriberData,
            82..=95 => TatpTxn::UpdateLocation,
            96..=97 => TatpTxn::InsertCallForwarding,
            _ => TatpTxn::DeleteCallForwarding,
        }
    }

    /// Whether the transaction writes.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            TatpTxn::UpdateSubscriberData
                | TatpTxn::UpdateLocation
                | TatpTxn::InsertCallForwarding
                | TatpTxn::DeleteCallForwarding
        )
    }
}

/// The TATP workload engine. Jobs are single transactions — the paper
/// calls them "short database operations … ten µs on average" (§VI-C).
#[derive(Debug)]
pub struct Tatp {
    chooser: KeyChooser,
    compute_ns: u64,
    num_subscribers: u64,
    subscriber_base: u64,
    subscriber_bytes: u64,
    access_info_base: u64,
    special_facility_base: u64,
    call_forwarding_base: u64,
    row_bytes: u64,
}

impl Tatp {
    /// Builds the TATP tables inside the dataset.
    pub fn new(params: &WorkloadParams, seed: u64) -> Self {
        let space = AddressSpace::new(params.dataset_bytes);
        let mut alloc = SimAlloc::sequential(space);
        // Row budget: subscriber (record_bytes) + 3 AI + 2 SF + 4 CF rows
        // of 64..128 B each. Solve for the subscriber count that fits.
        let row_bytes = 128u64;
        let per_sub = params.record_bytes
            + AI_PER_SUB * row_bytes
            + SF_PER_SUB * row_bytes
            + SF_PER_SUB * CF_PER_SF * row_bytes;
        // Leave slack for the page-rounding of the four table allocations.
        let num_subscribers = (params.dataset_bytes.saturating_sub(64 << 10) / per_sub).max(16);

        let subscriber_base = alloc.alloc(num_subscribers * params.record_bytes);
        let access_info_base = alloc.alloc(num_subscribers * AI_PER_SUB * row_bytes);
        let special_facility_base = alloc.alloc(num_subscribers * SF_PER_SUB * row_bytes);
        let call_forwarding_base =
            alloc.alloc(num_subscribers * SF_PER_SUB * CF_PER_SF * row_bytes);
        let _ = seed;

        Tatp {
            chooser: KeyChooser::new(
                num_subscribers,
                params.zipf_theta,
                (PAGE_SIZE / params.record_bytes).max(1),
                params.reuse_probability,
            ),
            compute_ns: params.compute_ns_per_op,
            num_subscribers,
            subscriber_base,
            subscriber_bytes: params.record_bytes,
            access_info_base,
            special_facility_base,
            call_forwarding_base,
            row_bytes,
        }
    }

    /// Number of subscribers the tables hold.
    pub fn num_subscribers(&self) -> u64 {
        self.num_subscribers
    }

    fn subscriber_addr(&self, s_id: u64) -> u64 {
        self.subscriber_base + s_id * self.subscriber_bytes
    }

    fn access_info_addr(&self, s_id: u64, ai: u64) -> u64 {
        self.access_info_base + (s_id * AI_PER_SUB + ai) * self.row_bytes
    }

    fn special_facility_addr(&self, s_id: u64, sf: u64) -> u64 {
        self.special_facility_base + (s_id * SF_PER_SUB + sf) * self.row_bytes
    }

    fn call_forwarding_addr(&self, s_id: u64, sf: u64, cf: u64) -> u64 {
        self.call_forwarding_base + ((s_id * SF_PER_SUB + sf) * CF_PER_SF + cf) * self.row_bytes
    }

    /// Emits one transaction's access trace into `out` (shared by the
    /// legacy nested path and the flat `fill_job` path).
    fn txn_trace(&self, txn: TatpTxn, s_id: u64, rng: &mut SimRng, out: &mut Vec<MemoryAccess>) {
        match txn {
            TatpTxn::GetSubscriberData => {
                // Full-row read of the wide subscriber record.
                touch_record(out, self.subscriber_addr(s_id), 4, false);
            }
            TatpTxn::GetNewDestination => {
                let sf = rng.gen_range(SF_PER_SUB);
                touch_record(out, self.special_facility_addr(s_id, sf), 1, false);
                for cf in 0..CF_PER_SF {
                    touch_record(out, self.call_forwarding_addr(s_id, sf, cf), 1, false);
                }
            }
            TatpTxn::GetAccessData => {
                let ai = rng.gen_range(AI_PER_SUB);
                touch_record(out, self.access_info_addr(s_id, ai), 1, false);
            }
            TatpTxn::UpdateSubscriberData => {
                out.push(MemoryAccess::write(self.subscriber_addr(s_id)));
                let sf = rng.gen_range(SF_PER_SUB);
                out.push(MemoryAccess::write(self.special_facility_addr(s_id, sf)));
            }
            TatpTxn::UpdateLocation => {
                // Read-modify-write of the subscriber row.
                touch_record(out, self.subscriber_addr(s_id), 2, true);
            }
            TatpTxn::InsertCallForwarding => {
                let sf = rng.gen_range(SF_PER_SUB);
                touch_record(out, self.special_facility_addr(s_id, sf), 1, false);
                let cf = rng.gen_range(CF_PER_SF);
                out.push(MemoryAccess::write(self.call_forwarding_addr(s_id, sf, cf)));
            }
            TatpTxn::DeleteCallForwarding => {
                let sf = rng.gen_range(SF_PER_SUB);
                let cf = rng.gen_range(CF_PER_SF);
                touch_record(out, self.call_forwarding_addr(s_id, sf, cf), 1, true);
            }
        }
    }

    /// Builds the access trace of one transaction.
    pub fn txn_ops(&self, txn: TatpTxn, s_id: u64, rng: &mut SimRng) -> Vec<Operation> {
        let mut ops = Vec::with_capacity(3);
        let mut accesses = Vec::with_capacity(12);
        self.txn_trace(txn, s_id, rng, &mut accesses);
        // TATP transactions are short: parse/plan compute, the accesses,
        // then commit compute.
        ops.push(Operation::new(self.compute_ns * 2, accesses));
        ops.push(Operation::compute(self.compute_ns));
        ops
    }
}

impl WorkloadEngine for Tatp {
    fn next_job(&mut self, rng: &mut SimRng) -> JobSpec {
        let s_id = self.chooser.next(rng);
        let txn = TatpTxn::sample(rng);
        JobSpec::new(self.txn_ops(txn, s_id, rng))
    }

    fn fill_job(&mut self, buf: &mut JobBuf, rng: &mut SimRng) {
        buf.clear();
        let s_id = self.chooser.next(rng);
        let txn = TatpTxn::sample(rng);
        let start = buf.mark();
        self.txn_trace(txn, s_id, rng, buf.accesses_mut());
        buf.finish_op(self.compute_ns * 2, start);
        buf.push_compute(self.compute_ns);
    }

    fn name(&self) -> &'static str {
        "TATP"
    }

    fn threads_per_core_hint(&self) -> usize {
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Tatp {
        Tatp::new(&WorkloadParams::tiny_for_tests(), 31)
    }

    #[test]
    fn mix_frequencies_match_spec() {
        let mut rng = SimRng::new(32);
        let n = 100_000;
        let mut reads = 0;
        for _ in 0..n {
            if !TatpTxn::sample(&mut rng).is_write() {
                reads += 1;
            }
        }
        let frac = reads as f64 / n as f64;
        // TATP is 80 % read / 20 % write.
        assert!((frac - 0.80).abs() < 0.01, "read fraction {frac}");
    }

    #[test]
    fn tables_fit_in_dataset() {
        let params = WorkloadParams::tiny_for_tests();
        let e = Tatp::new(&params, 1);
        let mut rng = SimRng::new(33);
        for _ in 0..500 {
            let s = rng.gen_range(e.num_subscribers());
            for txn in [
                TatpTxn::GetSubscriberData,
                TatpTxn::GetNewDestination,
                TatpTxn::GetAccessData,
                TatpTxn::UpdateSubscriberData,
                TatpTxn::UpdateLocation,
                TatpTxn::InsertCallForwarding,
                TatpTxn::DeleteCallForwarding,
            ] {
                for op in e.txn_ops(txn, s, &mut rng) {
                    for a in &op.accesses {
                        assert!(a.addr < params.dataset_bytes, "{txn:?} out of range");
                    }
                }
            }
        }
    }

    #[test]
    fn writes_match_txn_type() {
        let e = engine();
        let mut rng = SimRng::new(34);
        let ops = e.txn_ops(TatpTxn::GetSubscriberData, 5, &mut rng);
        assert!(ops.iter().all(|o| o.accesses.iter().all(|a| !a.is_write)));
        let ops = e.txn_ops(TatpTxn::UpdateLocation, 5, &mut rng);
        assert!(ops.iter().any(|o| o.accesses.iter().any(|a| a.is_write)));
    }

    #[test]
    fn distinct_subscribers_touch_distinct_rows() {
        let e = engine();
        assert_ne!(e.subscriber_addr(0), e.subscriber_addr(1));
        assert_ne!(e.access_info_addr(0, 0), e.access_info_addr(0, 1));
        assert_ne!(
            e.call_forwarding_addr(1, 0, 0),
            e.call_forwarding_addr(0, 1, 1)
        );
    }

    #[test]
    fn jobs_are_short() {
        let mut e = engine();
        let mut rng = SimRng::new(35);
        for _ in 0..100 {
            let job = e.next_job(&mut rng);
            assert!(job.total_accesses() <= 16, "TATP txns are small");
        }
    }
}
