//! Array Swap microbenchmark: "each operation swaps two array elements,
//! generating both reads and writes" (§V-A).

use astriflash_sim::SimRng;

use crate::address_space::{AddressSpace, PAGE_SIZE};
use crate::engines::touch_record;
use crate::job::{JobBuf, JobSpec, MemoryAccess, Operation, WorkloadEngine};
use crate::kind::WorkloadParams;
use crate::popularity::KeyChooser;

/// The Array Swap workload engine.
///
/// Records are laid out as one contiguous array; each swap reads both
/// elements and writes both back. Element popularity is Zipfian with
/// scrambling, so hot elements are scattered across the array.
#[derive(Debug)]
pub struct ArraySwap {
    chooser: KeyChooser,
    record_bytes: u64,
    blocks_per_touch: usize,
    compute_ns: u64,
    swaps_per_job: usize,
}

impl ArraySwap {
    /// Builds the engine over `params.num_records()` elements.
    pub fn new(params: &WorkloadParams, _seed: u64) -> Self {
        let n = params.num_records();
        // The array occupies the front of the address space; no per-record
        // allocation bookkeeping is needed for a dense array.
        let _space = AddressSpace::new(params.dataset_bytes);
        ArraySwap {
            chooser: KeyChooser::new(
                n,
                params.zipf_theta,
                (PAGE_SIZE / params.record_bytes).max(1),
                params.effective_reuse(0.75),
            ),
            record_bytes: params.record_bytes,
            blocks_per_touch: 2,
            compute_ns: params.compute_ns_per_op,
            swaps_per_job: 6,
        }
    }

    fn element_addr(&self, index: u64) -> u64 {
        index * self.record_bytes
    }
}

impl WorkloadEngine for ArraySwap {
    fn next_job(&mut self, rng: &mut SimRng) -> JobSpec {
        let mut ops = Vec::with_capacity(self.swaps_per_job);
        for _ in 0..self.swaps_per_job {
            let i = self.chooser.next(rng);
            let mut j = self.chooser.next(rng);
            if j == i {
                j = (i + 1) % self.chooser.n();
            }
            let mut accesses = Vec::with_capacity(2 * self.blocks_per_touch + 2);
            // Read both elements...
            touch_record(
                &mut accesses,
                self.element_addr(i),
                self.blocks_per_touch,
                false,
            );
            touch_record(
                &mut accesses,
                self.element_addr(j),
                self.blocks_per_touch,
                false,
            );
            // ...then write them back swapped.
            accesses.push(MemoryAccess::write(self.element_addr(i)));
            accesses.push(MemoryAccess::write(self.element_addr(j)));
            ops.push(Operation::new(self.compute_ns, accesses));
        }
        JobSpec::new(ops)
    }

    fn fill_job(&mut self, buf: &mut JobBuf, rng: &mut SimRng) {
        buf.clear();
        for _ in 0..self.swaps_per_job {
            let i = self.chooser.next(rng);
            let mut j = self.chooser.next(rng);
            if j == i {
                j = (i + 1) % self.chooser.n();
            }
            let start = buf.mark();
            // Read both elements...
            touch_record(
                buf.accesses_mut(),
                self.element_addr(i),
                self.blocks_per_touch,
                false,
            );
            touch_record(
                buf.accesses_mut(),
                self.element_addr(j),
                self.blocks_per_touch,
                false,
            );
            // ...then write them back swapped.
            buf.push(MemoryAccess::write(self.element_addr(i)));
            buf.push(MemoryAccess::write(self.element_addr(j)));
            buf.finish_op(self.compute_ns, start);
        }
    }

    fn name(&self) -> &'static str {
        "ArraySwap"
    }

    fn threads_per_core_hint(&self) -> usize {
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> ArraySwap {
        ArraySwap::new(&WorkloadParams::tiny_for_tests(), 1)
    }

    #[test]
    fn jobs_have_reads_and_writes() {
        let mut e = engine();
        let mut rng = SimRng::new(2);
        let job = e.next_job(&mut rng);
        assert_eq!(job.ops.len(), 6);
        assert!(job.total_writes() >= 12, "two writes per swap");
        assert!(job.total_accesses() > job.total_writes());
    }

    #[test]
    fn addresses_stay_in_dataset() {
        let params = WorkloadParams::tiny_for_tests();
        let mut e = ArraySwap::new(&params, 1);
        let mut rng = SimRng::new(3);
        for _ in 0..50 {
            let job = e.next_job(&mut rng);
            for a in job.accesses() {
                assert!(a.addr < params.dataset_bytes);
            }
        }
    }

    #[test]
    fn swap_never_pairs_element_with_itself() {
        let mut e = engine();
        let mut rng = SimRng::new(4);
        for _ in 0..100 {
            let job = e.next_job(&mut rng);
            for op in &job.ops {
                let writes: Vec<u64> = op
                    .accesses
                    .iter()
                    .filter(|a| a.is_write)
                    .map(|a| a.addr)
                    .collect();
                assert_eq!(writes.len(), 2);
                assert_ne!(writes[0], writes[1]);
            }
        }
    }
}
