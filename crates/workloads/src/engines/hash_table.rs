//! Hash Table microbenchmark: "data structure lookups with pointer
//! chasing behavior" (§V-A).
//!
//! An open-chaining table is built over the whole key population at
//! construction time. A lookup hashes the key, reads the bucket-head slot,
//! walks the chain node by node (each node is a separately allocated 64 B
//! cell, so the walk is genuine pointer chasing across scattered pages),
//! then touches the 1 KiB data record.

use astriflash_sim::rng::splitmix64;
use astriflash_sim::SimRng;

use crate::address_space::{AddressSpace, SimAlloc, BLOCK_SIZE, PAGE_SIZE};
use crate::engines::touch_record;
use crate::job::{JobBuf, JobSpec, MemoryAccess, Operation, WorkloadEngine};
use crate::kind::WorkloadParams;
use crate::popularity::KeyChooser;

const NODE_BYTES: u64 = 64;
const LOAD_FACTOR: u64 = 4; // mean chain length
/// Node slots reserved per bucket before spilling to the overflow
/// region. Chains are stored in their bucket's slot run — the layout a
/// slab-per-bucket allocator produces — so a chain walk has page
/// locality while remaining a dependent-load chain.
const SLOTS_PER_BUCKET: u64 = 8;

/// The Hash Table workload engine.
#[derive(Debug)]
pub struct HashTable {
    chooser: KeyChooser,
    compute_ns: u64,
    lookups_per_job: usize,
    write_fraction: f64,
    bucket_array_base: u64,
    num_buckets: u64,
    /// Per-key: (chain position, node address, record address).
    key_info: Vec<KeyInfo>,
    /// Per-bucket: node addresses in walk order (head first).
    chains: Vec<Vec<u32>>,
}

#[derive(Debug, Clone, Copy)]
struct KeyInfo {
    bucket: u32,
    node_addr: u64,
    record_addr: u64,
}

fn hash_key(key: u64) -> u64 {
    let mut s = key;
    splitmix64(&mut s)
}

impl HashTable {
    /// Builds and populates the table with `params.num_records()` keys.
    pub fn new(params: &WorkloadParams, seed: u64) -> Self {
        let n = params.num_records();
        // Round the bucket count *down* to a power of two so the node
        // slabs never overshoot the address-space budget; chains average
        // 4-8 entries.
        let want = (n / LOAD_FACTOR).max(16);
        let num_buckets = if want.is_power_of_two() {
            want
        } else {
            want.next_power_of_two() / 2
        };
        let space = AddressSpace::new(params.dataset_bytes);
        // Regions are indexed by address arithmetic, so they must be
        // contiguous: use the sequential allocator.
        let mut alloc = SimAlloc::sequential(space);
        let _ = seed;

        // Bucket array: 8 B slots, dense.
        let bucket_array_base = alloc.alloc(num_buckets * 8);
        // Per-bucket node slabs + an overflow region for long chains.
        let node_base = alloc.alloc(num_buckets * SLOTS_PER_BUCKET * NODE_BYTES);
        let overflow_base = alloc.alloc(n * NODE_BYTES / 4 + NODE_BYTES);
        // Records are laid out by key so popularity clusters share pages.
        let record_base = alloc.alloc(n * params.record_bytes);

        let mut key_info = Vec::with_capacity(n as usize);
        let mut chains: Vec<Vec<u32>> = vec![Vec::new(); num_buckets as usize];
        let mut overflow_used = 0u64;
        for key in 0..n {
            let bucket = (hash_key(key) % num_buckets) as u32;
            let pos = chains[bucket as usize].len() as u64;
            let node_addr = if pos < SLOTS_PER_BUCKET {
                node_base + (bucket as u64 * SLOTS_PER_BUCKET + pos) * NODE_BYTES
            } else {
                let a = overflow_base + overflow_used * NODE_BYTES;
                overflow_used += 1;
                a
            };
            let record_addr = record_base + key * params.record_bytes;
            key_info.push(KeyInfo {
                bucket,
                node_addr,
                record_addr,
            });
            chains[bucket as usize].push(key as u32);
        }

        HashTable {
            chooser: KeyChooser::new(
                n,
                params.zipf_theta,
                (PAGE_SIZE / params.record_bytes).max(1),
                params.effective_reuse(0.75),
            ),
            compute_ns: params.compute_ns_per_op,
            lookups_per_job: 8,
            write_fraction: 0.10,
            bucket_array_base,
            num_buckets,
            key_info,
            chains,
        }
    }

    /// Emits the access trace of one lookup into `out` (shared by the
    /// legacy nested path and the flat `fill_job` path).
    fn lookup_trace(&self, key: u64, write: bool, out: &mut Vec<MemoryAccess>) {
        let info = self.key_info[key as usize];
        // Bucket-head slot (64 B block containing the 8 B pointer).
        let slot_addr = self.bucket_array_base + info.bucket as u64 * 8;
        out.push(MemoryAccess::read(slot_addr / BLOCK_SIZE * BLOCK_SIZE));
        // Chain walk up to and including this key's node.
        for &k in &self.chains[info.bucket as usize] {
            out.push(MemoryAccess::read(self.key_info[k as usize].node_addr));
            if k as u64 == key {
                break;
            }
        }
        // Record payload: two blocks read, head block written on updates.
        touch_record(out, info.record_addr, 2, write);
    }

    /// Emits the access trace of one lookup and returns the operation.
    fn lookup_op(&self, key: u64, write: bool) -> Operation {
        let mut accesses = Vec::with_capacity(8);
        self.lookup_trace(key, write, &mut accesses);
        Operation::new(self.compute_ns, accesses)
    }

    /// Mean chain length (for tests and reports).
    pub fn mean_chain_len(&self) -> f64 {
        self.key_info.len() as f64 / self.num_buckets as f64
    }
}

impl WorkloadEngine for HashTable {
    fn next_job(&mut self, rng: &mut SimRng) -> JobSpec {
        let mut ops = Vec::with_capacity(self.lookups_per_job);
        for _ in 0..self.lookups_per_job {
            let key = self.chooser.next(rng);
            let write = rng.gen_bool(self.write_fraction);
            ops.push(self.lookup_op(key, write));
        }
        JobSpec::new(ops)
    }

    fn fill_job(&mut self, buf: &mut JobBuf, rng: &mut SimRng) {
        buf.clear();
        for _ in 0..self.lookups_per_job {
            let key = self.chooser.next(rng);
            let write = rng.gen_bool(self.write_fraction);
            let start = buf.mark();
            self.lookup_trace(key, write, buf.accesses_mut());
            buf.finish_op(self.compute_ns, start);
        }
    }

    fn name(&self) -> &'static str {
        "HashTable"
    }

    fn threads_per_core_hint(&self) -> usize {
        48
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> HashTable {
        HashTable::new(&WorkloadParams::tiny_for_tests(), 11)
    }

    #[test]
    fn lookup_walks_chain_to_target() {
        let e = engine();
        // Pick a key that is not at the head of its chain, if one exists.
        let key = (0..e.key_info.len() as u64)
            .find(|&k| {
                let b = e.key_info[k as usize].bucket as usize;
                e.chains[b].len() > 1 && e.chains[b][0] as u64 != k
            })
            .expect("some chain has length > 1");
        let op = e.lookup_op(key, false);
        let info = e.key_info[key as usize];
        // The trace must include the key's own node.
        assert!(op.accesses.iter().any(|a| a.addr == info.node_addr));
        // And at least: bucket slot + 2 nodes + 2 record blocks.
        assert!(op.accesses.len() >= 5);
    }

    #[test]
    fn chain_positions_are_respected() {
        let e = engine();
        // Head-of-chain keys touch exactly one node.
        let head_key = e.chains.iter().find(|c| !c.is_empty()).unwrap()[0] as u64;
        let op = e.lookup_op(head_key, false);
        let node_accesses = op
            .accesses
            .iter()
            .filter(|a| {
                e.key_info
                    .iter()
                    .any(|ki| ki.node_addr == a.addr)
            })
            .count();
        assert_eq!(node_accesses, 1);
    }

    #[test]
    fn writes_only_on_update_ops() {
        let e = engine();
        let read_op = e.lookup_op(3, false);
        assert_eq!(read_op.accesses.iter().filter(|a| a.is_write).count(), 0);
        let write_op = e.lookup_op(3, true);
        assert_eq!(write_op.accesses.iter().filter(|a| a.is_write).count(), 1);
    }

    #[test]
    fn load_factor_is_sane() {
        let e = engine();
        let m = e.mean_chain_len();
        assert!(m > 1.0 && m < 10.0, "mean chain length {m}");
    }

    #[test]
    fn all_keys_present_in_their_chain() {
        let e = engine();
        for (k, info) in e.key_info.iter().enumerate() {
            assert!(e.chains[info.bucket as usize].contains(&(k as u32)));
        }
    }
}
