//! Job and operation model shared by all workload engines.
//!
//! A *job* is one client request (one TATP transaction, one hash lookup,
//! …). It decomposes into [`Operation`]s, each contributing compute time
//! and a handful of block-granular memory accesses. The core model
//! executes operations in order; the memory hierarchy decides which
//! accesses stall the core or trigger thread switches.

use crate::address_space::{BLOCK_SIZE, PAGE_SIZE};
use astriflash_sim::SimRng;

/// One block-granular memory reference.
///
/// The translation-relevant decompositions of `addr` are resolved once
/// at generation time rather than per simulated access: the core's hot
/// loop replays each access many times (thread switches, MSHR retries,
/// DRAM-cache probes) and previously re-derived the page and block
/// numbers with two divisions each time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAccess {
    /// Simulated byte address.
    pub addr: u64,
    /// Pre-resolved virtual page number, `addr / PAGE_SIZE`.
    pub vpn: u64,
    /// Pre-resolved block index within the page,
    /// `(addr % PAGE_SIZE) / BLOCK_SIZE`.
    pub block: u32,
    /// Whether the reference is a store.
    pub is_write: bool,
}

impl MemoryAccess {
    /// A read of `addr`.
    pub fn read(addr: u64) -> Self {
        MemoryAccess {
            addr,
            vpn: addr / PAGE_SIZE,
            block: ((addr % PAGE_SIZE) / BLOCK_SIZE) as u32,
            is_write: false,
        }
    }

    /// A write of `addr`.
    pub fn write(addr: u64) -> Self {
        MemoryAccess {
            addr,
            vpn: addr / PAGE_SIZE,
            block: ((addr % PAGE_SIZE) / BLOCK_SIZE) as u32,
            is_write: true,
        }
    }
}

/// A unit of work: compute time followed by memory references.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Operation {
    /// Pure compute preceding the accesses, in nanoseconds. Includes the
    /// cost of core-private cache hits not modeled individually.
    pub compute_ns: u64,
    /// Memory references issued by this operation, in program order.
    pub accesses: Vec<MemoryAccess>,
}

impl Operation {
    /// An operation with compute time only.
    pub fn compute(ns: u64) -> Self {
        Operation {
            compute_ns: ns,
            accesses: Vec::new(),
        }
    }

    /// An operation with compute time and accesses.
    pub fn new(compute_ns: u64, accesses: Vec<MemoryAccess>) -> Self {
        Operation {
            compute_ns,
            accesses,
        }
    }
}

/// A complete job: an ordered list of operations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JobSpec {
    /// Operations in program order.
    pub ops: Vec<Operation>,
}

impl JobSpec {
    /// Creates a job from operations.
    pub fn new(ops: Vec<Operation>) -> Self {
        JobSpec { ops }
    }

    /// Total compute time across operations.
    pub fn total_compute_ns(&self) -> u64 {
        self.ops.iter().map(|o| o.compute_ns).sum()
    }

    /// Total number of memory accesses.
    pub fn total_accesses(&self) -> usize {
        self.ops.iter().map(|o| o.accesses.len()).sum()
    }

    /// Number of write accesses.
    pub fn total_writes(&self) -> usize {
        self.ops
            .iter()
            .flat_map(|o| &o.accesses)
            .filter(|a| a.is_write)
            .count()
    }

    /// Iterates all accesses in program order.
    pub fn accesses(&self) -> impl Iterator<Item = &MemoryAccess> {
        self.ops.iter().flat_map(|o| o.accesses.iter())
    }
}

/// One operation in flat encoding: compute time plus a span into the
/// job's contiguous access slab (DESIGN.md §14).
///
/// 16 bytes; a job's ops sit contiguously in [`JobBuf::ops`], so the
/// run loop's op fetch is one indexed load instead of a `Vec<Operation>`
/// pointer chase into per-op `Vec<MemoryAccess>` heads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatOp {
    /// Pure compute preceding the accesses, in nanoseconds.
    pub compute_ns: u64,
    /// First access of this op in the slab.
    pub access_start: u32,
    /// Number of accesses in this op.
    pub access_len: u32,
}

/// A flat, recycled job encoding: one contiguous [`MemoryAccess`] slab
/// plus [`FlatOp`] spans over it.
///
/// Engines write into a `JobBuf` through [`WorkloadEngine::fill_job`];
/// the buffer is cleared and refilled, so after warm-up no per-job
/// allocation happens (both `Vec`s keep their high-water capacity).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobBuf {
    ops: Vec<FlatOp>,
    accesses: Vec<MemoryAccess>,
}

impl JobBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        JobBuf::default()
    }

    /// Clears contents, keeping capacity. Every `fill_job` starts here.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.accesses.clear();
    }

    /// Current slab length — the `access_start` of an op about to be
    /// built. Pair with [`JobBuf::finish_op`].
    pub fn mark(&self) -> u32 {
        self.accesses.len() as u32
    }

    /// Appends one access to the slab (part of the op under
    /// construction).
    pub fn push(&mut self, a: MemoryAccess) {
        self.accesses.push(a);
    }

    /// Mutable slab access, for data-structure trace helpers that
    /// append into a `&mut Vec<MemoryAccess>` (`lookup_trace`,
    /// `touch_record`, …).
    pub fn accesses_mut(&mut self) -> &mut Vec<MemoryAccess> {
        &mut self.accesses
    }

    /// Closes the op whose accesses started at `start` (from
    /// [`JobBuf::mark`]).
    pub fn finish_op(&mut self, compute_ns: u64, start: u32) {
        let len = self.accesses.len() as u32 - start;
        self.ops.push(FlatOp {
            compute_ns,
            access_start: start,
            access_len: len,
        });
    }

    /// Appends a compute-only op.
    pub fn push_compute(&mut self, compute_ns: u64) {
        let start = self.mark();
        self.ops.push(FlatOp {
            compute_ns,
            access_start: start,
            access_len: 0,
        });
    }

    /// Number of ops.
    pub fn op_count(&self) -> u32 {
        self.ops.len() as u32
    }

    /// The `idx`-th op (copied; 16 bytes).
    #[inline]
    pub fn op(&self, idx: u32) -> FlatOp {
        self.ops[idx as usize]
    }

    /// The `idx`-th slab access (copied; 24 bytes).
    #[inline]
    pub fn access(&self, idx: u32) -> MemoryAccess {
        self.accesses[idx as usize]
    }

    /// All ops in program order.
    pub fn ops(&self) -> &[FlatOp] {
        &self.ops
    }

    /// The whole access slab in program order.
    pub fn accesses(&self) -> &[MemoryAccess] {
        &self.accesses
    }

    /// True when the buffer holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total compute time across ops.
    pub fn total_compute_ns(&self) -> u64 {
        self.ops.iter().map(|o| o.compute_ns).sum()
    }

    /// Total number of memory accesses.
    pub fn total_accesses(&self) -> usize {
        self.accesses.len()
    }

    /// Number of write accesses.
    pub fn total_writes(&self) -> usize {
        self.accesses.iter().filter(|a| a.is_write).count()
    }

    /// Flattens a nested `JobSpec` into this buffer (overwrites it).
    /// Used by the default [`WorkloadEngine::fill_job`] and by tests.
    pub fn load_spec(&mut self, spec: &JobSpec) {
        self.clear();
        for op in &spec.ops {
            let start = self.mark();
            self.accesses.extend_from_slice(&op.accesses);
            self.finish_op(op.compute_ns, start);
        }
    }

    /// Expands back to the nested representation. Test-path only — the
    /// differential suites compare `decode()` against the retained
    /// legacy `next_job` output.
    pub fn decode(&self) -> JobSpec {
        JobSpec {
            ops: self
                .ops
                .iter()
                .map(|o| Operation {
                    compute_ns: o.compute_ns,
                    accesses: self.accesses
                        [o.access_start as usize..(o.access_start + o.access_len) as usize]
                        .to_vec(),
                })
                .collect(),
        }
    }
}

/// A per-core pool of [`JobBuf`] slots with a free-list.
///
/// `alloc` pops a recycled slot (or grows the pool on first use);
/// `release` pushes it back. Slot contents are *not* cleared on release
/// — `fill_job` overwrites on the next fill — so capacity is retained
/// and steady-state job turnover allocates nothing.
#[derive(Debug, Default)]
pub struct JobArena {
    slots: Vec<JobBuf>,
    free: Vec<u32>,
}

impl JobArena {
    /// An empty arena.
    pub fn new() -> Self {
        JobArena::default()
    }

    /// An arena with `n` pre-created free slots (e.g. threads per core).
    pub fn with_capacity(n: usize) -> Self {
        JobArena {
            slots: (0..n).map(|_| JobBuf::new()).collect(),
            free: (0..n as u32).rev().collect(),
        }
    }

    /// Claims a slot, growing the pool if none is free.
    pub fn alloc(&mut self) -> u32 {
        if let Some(slot) = self.free.pop() {
            slot
        } else {
            self.slots.push(JobBuf::new());
            (self.slots.len() - 1) as u32
        }
    }

    /// Returns a slot to the free list. The buffer keeps its capacity.
    pub fn release(&mut self, slot: u32) {
        debug_assert!((slot as usize) < self.slots.len(), "release of unknown slot");
        debug_assert!(!self.free.contains(&slot), "double release of slot {slot}");
        self.free.push(slot);
    }

    /// Shared view of a slot's buffer.
    #[inline]
    pub fn buf(&self, slot: u32) -> &JobBuf {
        &self.slots[slot as usize]
    }

    /// Mutable view of a slot's buffer.
    #[inline]
    pub fn buf_mut(&mut self, slot: u32) -> &mut JobBuf {
        &mut self.slots[slot as usize]
    }

    /// Total slots ever created.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the arena has created no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Currently free (recyclable) slots.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Currently live (allocated) slots.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

/// A source of jobs: one per workload.
///
/// Engines are deterministic given the construction seed and the `SimRng`
/// passed to [`WorkloadEngine::next_job`].
pub trait WorkloadEngine: Send {
    /// Generates the next job.
    fn next_job(&mut self, rng: &mut SimRng) -> JobSpec;

    /// Generates the next job directly into a recycled flat buffer
    /// (overwriting it) — the allocation-free twin of
    /// [`WorkloadEngine::next_job`].
    ///
    /// Contract: for engines in the same state, `fill_job` must draw
    /// from `rng` in the identical sequence as `next_job` and produce a
    /// buffer that [`JobBuf::decode`]s to the identical `JobSpec`; the
    /// differential suites in `crates/workloads/tests` enforce this per
    /// engine. The default implementation flattens `next_job` (correct
    /// but allocating); hot engines override it to write the slab
    /// directly.
    fn fill_job(&mut self, buf: &mut JobBuf, rng: &mut SimRng) {
        let spec = self.next_job(rng);
        buf.load_spec(&spec);
    }

    /// Short workload name (used in reports).
    fn name(&self) -> &'static str;

    /// Suggested user-level threads per core for this workload
    /// (the paper spawns 32–64 depending on the workload, §V-A).
    fn threads_per_core_hint(&self) -> usize {
        48
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_aggregates() {
        let job = JobSpec::new(vec![
            Operation::new(100, vec![MemoryAccess::read(0), MemoryAccess::write(64)]),
            Operation::compute(50),
            Operation::new(25, vec![MemoryAccess::write(128)]),
        ]);
        assert_eq!(job.total_compute_ns(), 175);
        assert_eq!(job.total_accesses(), 3);
        assert_eq!(job.total_writes(), 2);
        let addrs: Vec<u64> = job.accesses().map(|a| a.addr).collect();
        assert_eq!(addrs, vec![0, 64, 128]);
    }

    #[test]
    fn access_constructors() {
        assert!(!MemoryAccess::read(5).is_write);
        assert!(MemoryAccess::write(5).is_write);
    }

    #[test]
    fn job_buf_round_trips_a_spec() {
        let spec = JobSpec::new(vec![
            Operation::new(100, vec![MemoryAccess::read(0), MemoryAccess::write(64)]),
            Operation::compute(50),
            Operation::new(25, vec![MemoryAccess::write(128)]),
        ]);
        let mut buf = JobBuf::new();
        buf.load_spec(&spec);
        assert_eq!(buf.op_count(), 3);
        assert_eq!(buf.total_compute_ns(), spec.total_compute_ns());
        assert_eq!(buf.total_accesses(), spec.total_accesses());
        assert_eq!(buf.total_writes(), spec.total_writes());
        assert_eq!(buf.decode(), spec);
        // Refill overwrites: the previous contents must not leak through.
        let other = JobSpec::new(vec![Operation::new(7, vec![MemoryAccess::read(4096)])]);
        buf.load_spec(&other);
        assert_eq!(buf.decode(), other);
    }

    #[test]
    fn job_buf_incremental_builders() {
        let mut buf = JobBuf::new();
        let start = buf.mark();
        buf.push(MemoryAccess::read(0));
        buf.push(MemoryAccess::write(64));
        buf.finish_op(100, start);
        buf.push_compute(50);
        let start = buf.mark();
        buf.accesses_mut().push(MemoryAccess::write(128));
        buf.finish_op(25, start);
        assert_eq!(buf.op(0), FlatOp { compute_ns: 100, access_start: 0, access_len: 2 });
        assert_eq!(buf.op(1), FlatOp { compute_ns: 50, access_start: 2, access_len: 0 });
        assert_eq!(buf.op(2), FlatOp { compute_ns: 25, access_start: 2, access_len: 1 });
        assert_eq!(buf.access(2).addr, 128);
        assert!(!buf.is_empty());
    }

    #[test]
    fn arena_recycles_slots() {
        let mut arena = JobArena::with_capacity(2);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.free_len(), 2);
        let a = arena.alloc();
        let b = arena.alloc();
        assert_ne!(a, b);
        assert_eq!(arena.live(), 2);
        // Exhausted pool grows.
        let c = arena.alloc();
        assert_eq!(arena.len(), 3);
        arena.buf_mut(a).push_compute(1);
        arena.release(a);
        // The freed slot is reused before any new slot is created.
        let d = arena.alloc();
        assert_eq!(d, a);
        assert_eq!(arena.len(), 3);
        arena.release(b);
        arena.release(c);
        arena.release(d);
        assert_eq!(arena.free_len(), 3);
    }

    #[test]
    fn default_fill_job_matches_next_job() {
        struct Fixed;
        impl WorkloadEngine for Fixed {
            fn next_job(&mut self, _rng: &mut SimRng) -> JobSpec {
                JobSpec::new(vec![
                    Operation::new(10, vec![MemoryAccess::read(64), MemoryAccess::write(4096)]),
                    Operation::compute(5),
                ])
            }
            fn name(&self) -> &'static str {
                "fixed"
            }
        }
        let mut rng = SimRng::new(1);
        let mut buf = JobBuf::new();
        Fixed.fill_job(&mut buf, &mut rng);
        assert_eq!(buf.decode(), Fixed.next_job(&mut rng));
    }

    #[test]
    fn flat_op_stays_packed() {
        // DESIGN.md §14: the run loop's op fetch is one 16-byte load.
        assert_eq!(std::mem::size_of::<FlatOp>(), 16, "FlatOp grew; see DESIGN.md §14");
        assert_eq!(
            std::mem::size_of::<MemoryAccess>(),
            24,
            "MemoryAccess grew; see DESIGN.md §14"
        );
    }

    #[test]
    fn pre_resolved_fields_match_recomputation() {
        for addr in [0u64, 63, 64, 4095, 4096, 4160, 7 * 4096 + 3 * 64 + 9] {
            for a in [MemoryAccess::read(addr), MemoryAccess::write(addr)] {
                assert_eq!(a.vpn, addr / PAGE_SIZE, "vpn of {addr:#x}");
                assert_eq!(
                    a.block as u64,
                    (addr % PAGE_SIZE) / BLOCK_SIZE,
                    "block of {addr:#x}"
                );
            }
        }
    }
}
