//! Job and operation model shared by all workload engines.
//!
//! A *job* is one client request (one TATP transaction, one hash lookup,
//! …). It decomposes into [`Operation`]s, each contributing compute time
//! and a handful of block-granular memory accesses. The core model
//! executes operations in order; the memory hierarchy decides which
//! accesses stall the core or trigger thread switches.

use crate::address_space::{BLOCK_SIZE, PAGE_SIZE};
use astriflash_sim::SimRng;

/// One block-granular memory reference.
///
/// The translation-relevant decompositions of `addr` are resolved once
/// at generation time rather than per simulated access: the core's hot
/// loop replays each access many times (thread switches, MSHR retries,
/// DRAM-cache probes) and previously re-derived the page and block
/// numbers with two divisions each time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAccess {
    /// Simulated byte address.
    pub addr: u64,
    /// Pre-resolved virtual page number, `addr / PAGE_SIZE`.
    pub vpn: u64,
    /// Pre-resolved block index within the page,
    /// `(addr % PAGE_SIZE) / BLOCK_SIZE`.
    pub block: u32,
    /// Whether the reference is a store.
    pub is_write: bool,
}

impl MemoryAccess {
    /// A read of `addr`.
    pub fn read(addr: u64) -> Self {
        MemoryAccess {
            addr,
            vpn: addr / PAGE_SIZE,
            block: ((addr % PAGE_SIZE) / BLOCK_SIZE) as u32,
            is_write: false,
        }
    }

    /// A write of `addr`.
    pub fn write(addr: u64) -> Self {
        MemoryAccess {
            addr,
            vpn: addr / PAGE_SIZE,
            block: ((addr % PAGE_SIZE) / BLOCK_SIZE) as u32,
            is_write: true,
        }
    }
}

/// A unit of work: compute time followed by memory references.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Operation {
    /// Pure compute preceding the accesses, in nanoseconds. Includes the
    /// cost of core-private cache hits not modeled individually.
    pub compute_ns: u64,
    /// Memory references issued by this operation, in program order.
    pub accesses: Vec<MemoryAccess>,
}

impl Operation {
    /// An operation with compute time only.
    pub fn compute(ns: u64) -> Self {
        Operation {
            compute_ns: ns,
            accesses: Vec::new(),
        }
    }

    /// An operation with compute time and accesses.
    pub fn new(compute_ns: u64, accesses: Vec<MemoryAccess>) -> Self {
        Operation {
            compute_ns,
            accesses,
        }
    }
}

/// A complete job: an ordered list of operations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JobSpec {
    /// Operations in program order.
    pub ops: Vec<Operation>,
}

impl JobSpec {
    /// Creates a job from operations.
    pub fn new(ops: Vec<Operation>) -> Self {
        JobSpec { ops }
    }

    /// Total compute time across operations.
    pub fn total_compute_ns(&self) -> u64 {
        self.ops.iter().map(|o| o.compute_ns).sum()
    }

    /// Total number of memory accesses.
    pub fn total_accesses(&self) -> usize {
        self.ops.iter().map(|o| o.accesses.len()).sum()
    }

    /// Number of write accesses.
    pub fn total_writes(&self) -> usize {
        self.ops
            .iter()
            .flat_map(|o| &o.accesses)
            .filter(|a| a.is_write)
            .count()
    }

    /// Iterates all accesses in program order.
    pub fn accesses(&self) -> impl Iterator<Item = &MemoryAccess> {
        self.ops.iter().flat_map(|o| o.accesses.iter())
    }
}

/// A source of jobs: one per workload.
///
/// Engines are deterministic given the construction seed and the `SimRng`
/// passed to [`WorkloadEngine::next_job`].
pub trait WorkloadEngine: Send {
    /// Generates the next job.
    fn next_job(&mut self, rng: &mut SimRng) -> JobSpec;

    /// Short workload name (used in reports).
    fn name(&self) -> &'static str;

    /// Suggested user-level threads per core for this workload
    /// (the paper spawns 32–64 depending on the workload, §V-A).
    fn threads_per_core_hint(&self) -> usize {
        48
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_aggregates() {
        let job = JobSpec::new(vec![
            Operation::new(100, vec![MemoryAccess::read(0), MemoryAccess::write(64)]),
            Operation::compute(50),
            Operation::new(25, vec![MemoryAccess::write(128)]),
        ]);
        assert_eq!(job.total_compute_ns(), 175);
        assert_eq!(job.total_accesses(), 3);
        assert_eq!(job.total_writes(), 2);
        let addrs: Vec<u64> = job.accesses().map(|a| a.addr).collect();
        assert_eq!(addrs, vec![0, 64, 128]);
    }

    #[test]
    fn access_constructors() {
        assert!(!MemoryAccess::read(5).is_write);
        assert!(MemoryAccess::write(5).is_write);
    }

    #[test]
    fn pre_resolved_fields_match_recomputation() {
        for addr in [0u64, 63, 64, 4095, 4096, 4160, 7 * 4096 + 3 * 64 + 9] {
            for a in [MemoryAccess::read(addr), MemoryAccess::write(addr)] {
                assert_eq!(a.vpn, addr / PAGE_SIZE, "vpn of {addr:#x}");
                assert_eq!(
                    a.block as u64,
                    (addr % PAGE_SIZE) / BLOCK_SIZE,
                    "block of {addr:#x}"
                );
            }
        }
    }
}
