//! Property tests of the simulation kernel primitives.

use astriflash_sim::{
    BandwidthLink, BoundedQueue, EventQueue, HeapEventQueue, PageMap, ScanEventQueue, SimDuration,
    SimRng, SimTime,
};
use astriflash_testkit::prop_check;

/// Time arithmetic: (t + d) - t == d and ordering is preserved, for any
/// values that do not overflow.
#[test]
fn time_arithmetic_roundtrips() {
    prop_check!(cases: 128, |g| {
        let t = SimTime::from_ns(g.u64_in(0..u64::MAX / 4));
        let d = SimDuration::from_ns(g.u64_in(0..u64::MAX / 4));
        assert_eq!((t + d) - t, d);
        assert!((t + d) >= t);
    });
}

/// A bandwidth link never completes a transfer before its request and
/// total busy time equals the sum of service times.
#[test]
fn bandwidth_link_is_causal() {
    prop_check!(cases: 128, |g| {
        let sizes = g.vec(1..50, |g| g.u64_in(1..1_000_000));
        let bps = g.u64_in(1_000_000..100_000_000_000);
        let mut link = BandwidthLink::new(bps);
        let mut last_done = SimTime::ZERO;
        let mut expect_busy = SimDuration::ZERO;
        for &bytes in &sizes {
            let done = link.transfer(SimTime::ZERO, bytes);
            assert!(done >= last_done, "completions must be ordered");
            expect_busy += link.service_time(bytes);
            last_done = done;
        }
        // Back-to-back requests at t=0 keep the link busy continuously.
        assert_eq!(link.busy_until() - SimTime::ZERO, expect_busy);
        assert_eq!(link.bytes_moved(), sizes.iter().sum::<u64>());
    });
}

/// Bounded queues preserve FIFO order and never exceed capacity.
#[test]
fn bounded_queue_fifo() {
    prop_check!(cases: 128, |g| {
        let items = g.vec(1..200, |g| g.any_u32());
        let capacity = g.usize_in(1..64);
        let mut q = BoundedQueue::new(capacity);
        let mut accepted = Vec::new();
        for &item in &items {
            if q.push(SimTime::ZERO, item).is_ok() {
                accepted.push(item);
            }
            assert!(q.len() <= capacity);
        }
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop(SimTime::ZERO)).collect();
        assert_eq!(drained, accepted);
    });
}

/// The RNG's bounded generation is uniform enough that every residue
/// class of a small modulus is hit.
#[test]
fn rng_bounded_covers() {
    prop_check!(cases: 128, |g| {
        let seed = g.any_u64();
        let bound = g.u64_in(2..32);
        let mut rng = SimRng::new(seed);
        let mut seen = vec![false; bound as usize];
        for _ in 0..(bound * 200) {
            let v = rng.gen_range(bound);
            assert!(v < bound);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "a residue class was never drawn");
    });
}

/// Differential test: the timer-wheel [`EventQueue`] must deliver the
/// exact same `(timestamp, payload)` stream as the reference
/// [`HeapEventQueue`] under randomized interleaved schedules and pops —
/// including bursts of same-timestamp events (FIFO tie-breaks) and
/// far-future events that land in the wheel's overflow level.
#[test]
fn event_queue_matches_heap_reference() {
    prop_check!(cases: 64, |g| {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
        let rounds = g.usize_in(1..400);
        let mut tag = 0u64;
        for _ in 0..rounds {
            let schedules = g.usize_in(0..8);
            for _ in 0..schedules {
                // Mix of delay regimes: immediate (same-timestamp FIFO
                // bursts at `now`), short, medium, long, and far-future
                // (beyond the 2^42 ns wheel horizon → overflow level).
                let delay = match g.usize_in(0..5) {
                    0 => 0,
                    1 => g.u64_in(0..64),
                    2 => g.u64_in(0..100_000),
                    3 => g.u64_in(0..1 << 30),
                    _ => g.u64_in(1 << 42..1 << 50),
                };
                wheel.schedule_after_ns(delay, tag);
                heap.schedule_after_ns(delay, tag);
                tag += 1;
            }
            let pops = g.usize_in(0..6);
            for _ in 0..pops {
                assert_eq!(wheel.pop(), heap.pop(), "pop stream diverged");
                assert_eq!(wheel.now(), heap.now());
                assert_eq!(wheel.len(), heap.len());
            }
        }
        // Drain both queues completely.
        loop {
            let w = wheel.pop();
            assert_eq!(w, heap.pop(), "drain stream diverged");
            if w.is_none() {
                break;
            }
        }
        assert_eq!(wheel.scheduled_total(), heap.scheduled_total());
    });
}

/// Differential test of **batched slot dispatch**: the production
/// [`EventQueue`] (whole-slot drain into a pooled, seq-sorted ready
/// buffer) must deliver the exact same `(timestamp, payload)` stream as
/// the retained pre-batching [`ScanEventQueue`] *and* the
/// [`HeapEventQueue`] specification, under randomized interleaved
/// push/pop/advance schedules. The delay mix deliberately stresses the
/// batching-specific cases:
///
/// * same-tick ties — bursts of events at one exact timestamp, including
///   events scheduled *at the current tick while its drained batch is
///   still delivering* (they must come after the whole batch, by seq);
/// * far-future rotations — delays beyond the 2^42 ns wheel horizon that
///   park in overflow and fold back in mid-drain.
#[test]
fn batched_drain_matches_scan_and_heap_references() {
    prop_check!(cases: 64, |g| {
        let mut batched: EventQueue<u64> = EventQueue::new();
        let mut scan: ScanEventQueue<u64> = ScanEventQueue::new();
        let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
        let rounds = g.usize_in(1..300);
        let mut tag = 0u64;
        for _ in 0..rounds {
            match g.usize_in(0..8) {
                // Burst at a single timestamp (same-tick FIFO ties).
                0..=1 => {
                    let delay = match g.usize_in(0..4) {
                        0 => 0, // at `now`: lands behind any in-flight batch
                        1 => g.u64_in(0..64),
                        2 => g.u64_in(0..100_000),
                        _ => g.u64_in(1 << 42..1 << 50), // overflow rotation
                    };
                    let burst = g.usize_in(1..12);
                    for _ in 0..burst {
                        batched.schedule_after_ns(delay, tag);
                        scan.schedule_after_ns(delay, tag);
                        heap.schedule_after_ns(delay, tag);
                        tag += 1;
                    }
                }
                // Scatter of independent delays.
                2..=4 => {
                    let n = g.usize_in(1..8);
                    for _ in 0..n {
                        let span_bits = g.u32_in(1..44);
                        let delay = g.u64_in(0..1 << span_bits);
                        batched.schedule_after_ns(delay, tag);
                        scan.schedule_after_ns(delay, tag);
                        heap.schedule_after_ns(delay, tag);
                        tag += 1;
                    }
                }
                // Pops, checked in lockstep across all three.
                5..=6 => {
                    let pops = g.usize_in(1..10);
                    for _ in 0..pops {
                        let b = batched.pop();
                        assert_eq!(b, scan.pop(), "batched vs scan diverged");
                        assert_eq!(b, heap.pop(), "batched vs heap diverged");
                        assert_eq!(batched.now(), scan.now());
                        assert_eq!(batched.now(), heap.now());
                        assert_eq!(batched.len(), scan.len());
                        assert_eq!(batched.peek_time(), scan.peek_time());
                    }
                }
                // Event-free clock advance (statistics-window close).
                _ => {
                    // Only legal when it does not step over pending
                    // events' delivery times moving `now` past them is
                    // fine for the contract, but keep all three in
                    // lockstep regardless.
                    let d = g.u64_in(0..10_000);
                    let to = batched.now() + SimDuration::from_ns(d);
                    batched.advance_to(to);
                    scan.advance_to(to);
                    heap.advance_to(to);
                }
            }
        }
        // Drain fully; every queue must agree to the end.
        loop {
            let b = batched.pop();
            assert_eq!(b, scan.pop(), "drain: batched vs scan diverged");
            assert_eq!(b, heap.pop(), "drain: batched vs heap diverged");
            if b.is_none() {
                break;
            }
        }
        assert_eq!(batched.scheduled_total(), scan.scheduled_total());
        assert_eq!(batched.popped_total(), scan.popped_total());
    });
}

/// [`PageMap`] agrees with `std::collections::HashMap` under a random
/// op stream over a small (collision-heavy) key space.
#[test]
fn page_map_matches_hashmap_reference() {
    prop_check!(cases: 64, |g| {
        let mut map: PageMap<u64> = PageMap::new();
        let mut reference = std::collections::HashMap::new();
        let ops = g.usize_in(1..2_000);
        for _ in 0..ops {
            let key = g.u64_in(0..256);
            match g.usize_in(0..4) {
                0 | 1 => {
                    let val = g.any_u64();
                    assert_eq!(map.insert(key, val), reference.insert(key, val));
                }
                2 => assert_eq!(map.remove(key), reference.remove(&key)),
                _ => assert_eq!(map.get(key), reference.get(&key).copied()),
            }
            assert_eq!(map.len(), reference.len());
        }
    });
}

/// Exponential samples are nonnegative and the sample mean is within a
/// loose band of the requested mean.
#[test]
fn exponential_mean_band() {
    prop_check!(cases: 128, |g| {
        let seed = g.any_u64();
        let mean = g.f64_in(1.0..100_000.0);
        let mut rng = SimRng::new(seed);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.gen_exp(mean);
            assert!(v >= 0.0);
            sum += v;
        }
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() / mean < 0.1,
            "sample mean {sample_mean} vs {mean}"
        );
    });
}
