//! Property tests of the simulation kernel primitives.

use proptest::prelude::*;

use astriflash_sim::{BandwidthLink, BoundedQueue, SimDuration, SimRng, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Time arithmetic: (t + d) - t == d and ordering is preserved, for
    /// any values that do not overflow.
    #[test]
    fn time_arithmetic_roundtrips(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_ns(t);
        let d = SimDuration::from_ns(d);
        prop_assert_eq!((t + d) - t, d);
        prop_assert!((t + d) >= t);
    }

    /// A bandwidth link never completes a transfer before its request
    /// and total busy time equals the sum of service times.
    #[test]
    fn bandwidth_link_is_causal(
        sizes in prop::collection::vec(1u64..1_000_000, 1..50),
        bps in 1_000_000u64..100_000_000_000,
    ) {
        let mut link = BandwidthLink::new(bps);
        let mut last_done = SimTime::ZERO;
        let mut expect_busy = SimDuration::ZERO;
        for &bytes in &sizes {
            let done = link.transfer(SimTime::ZERO, bytes);
            prop_assert!(done >= last_done, "completions must be ordered");
            expect_busy += link.service_time(bytes);
            last_done = done;
        }
        // Back-to-back requests at t=0 keep the link busy continuously.
        prop_assert_eq!(link.busy_until() - SimTime::ZERO, expect_busy);
        prop_assert_eq!(link.bytes_moved(), sizes.iter().sum::<u64>());
    }

    /// Bounded queues preserve FIFO order and never exceed capacity.
    #[test]
    fn bounded_queue_fifo(
        items in prop::collection::vec(any::<u32>(), 1..200),
        capacity in 1usize..64,
    ) {
        let mut q = BoundedQueue::new(capacity);
        let mut accepted = Vec::new();
        for &item in &items {
            if q.push(SimTime::ZERO, item).is_ok() {
                accepted.push(item);
            }
            prop_assert!(q.len() <= capacity);
        }
        let drained: Vec<u32> =
            std::iter::from_fn(|| q.pop(SimTime::ZERO)).collect();
        prop_assert_eq!(drained, accepted);
    }

    /// The RNG's bounded generation is uniform enough that every residue
    /// class of a small modulus is hit.
    #[test]
    fn rng_bounded_covers(seed in any::<u64>(), bound in 2u64..32) {
        let mut rng = SimRng::new(seed);
        let mut seen = vec![false; bound as usize];
        for _ in 0..(bound * 200) {
            let v = rng.gen_range(bound);
            prop_assert!(v < bound);
            seen[v as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "a residue class was never drawn");
    }

    /// Exponential samples are nonnegative and the sample mean is within
    /// a loose band of the requested mean.
    #[test]
    fn exponential_mean_band(seed in any::<u64>(), mean in 1.0f64..100_000.0) {
        let mut rng = SimRng::new(seed);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.gen_exp(mean);
            prop_assert!(v >= 0.0);
            sum += v;
        }
        let sample_mean = sum / n as f64;
        prop_assert!((sample_mean - mean).abs() / mean < 0.1,
            "sample mean {sample_mean} vs {mean}");
    }
}
