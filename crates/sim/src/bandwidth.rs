//! Shared-link bandwidth modeling.
//!
//! The PCIe link between the backside controller and flash, and the flash
//! channels themselves, are serial resources: transfers queue behind each
//! other. `BandwidthLink` computes when a transfer of a given size
//! completes given everything already scheduled on the link.

use crate::time::{SimDuration, SimTime};

/// A serial link with fixed bytes-per-second capacity.
///
/// Transfers are serviced in request order; a request issued at time `t`
/// begins at `max(t, busy_until)` and occupies the link for
/// `size / bandwidth`.
///
/// # Example
///
/// ```
/// use astriflash_sim::{BandwidthLink, SimTime};
/// // 1 GB/s link: a 4 KiB transfer takes 4096 ns.
/// let mut link = BandwidthLink::new(1_000_000_000);
/// let done = link.transfer(SimTime::ZERO, 4096);
/// assert_eq!(done.as_ns(), 4096);
/// let done2 = link.transfer(SimTime::ZERO, 4096); // queues behind
/// assert_eq!(done2.as_ns(), 8192);
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthLink {
    bytes_per_sec: u64,
    busy_until: SimTime,
    bytes_moved: u64,
    transfers: u64,
    busy_ns: u64,
}

impl BandwidthLink {
    /// Creates a link with the given capacity in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec == 0`.
    pub fn new(bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "link bandwidth must be positive");
        BandwidthLink {
            bytes_per_sec,
            busy_until: SimTime::ZERO,
            bytes_moved: 0,
            transfers: 0,
            busy_ns: 0,
        }
    }

    /// Duration a transfer of `bytes` occupies the link.
    pub fn service_time(&self, bytes: u64) -> SimDuration {
        // ns = bytes * 1e9 / Bps, computed in u128 to avoid overflow.
        let ns = (bytes as u128 * 1_000_000_000) / self.bytes_per_sec as u128;
        SimDuration::from_ns(ns.max(1) as u64)
    }

    /// Schedules a transfer requested at `now`; returns its completion time.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = self.busy_until.max(now);
        let dur = self.service_time(bytes);
        self.busy_until = start + dur;
        self.bytes_moved += bytes;
        self.transfers += 1;
        self.busy_ns += dur.as_ns();
        self.busy_until
    }

    /// Time at which the link next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total bytes moved over the link.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Number of transfers serviced.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Link utilization over `[0, now]` in `[0, 1]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.as_ns() == 0 {
            0.0
        } else {
            (self.busy_ns as f64 / now.as_ns() as f64).min(1.0)
        }
    }

    /// Achieved throughput in bytes/sec over `[0, now]`.
    pub fn achieved_bps(&self, now: SimTime) -> f64 {
        let secs = now.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.bytes_moved as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_scales_with_size() {
        let link = BandwidthLink::new(2_000_000_000); // 2 GB/s
        assert_eq!(link.service_time(4096).as_ns(), 2048);
        assert_eq!(link.service_time(8192).as_ns(), 4096);
    }

    #[test]
    fn transfers_serialize() {
        let mut link = BandwidthLink::new(1_000_000_000);
        let a = link.transfer(SimTime::ZERO, 1000);
        let b = link.transfer(SimTime::ZERO, 1000);
        assert_eq!(a.as_ns(), 1000);
        assert_eq!(b.as_ns(), 2000);
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let mut link = BandwidthLink::new(1_000_000_000);
        link.transfer(SimTime::ZERO, 1000);
        // Request long after the link went idle.
        let done = link.transfer(SimTime::from_us(10), 1000);
        assert_eq!(done.as_ns(), 11_000);
    }

    #[test]
    fn utilization_and_throughput() {
        let mut link = BandwidthLink::new(1_000_000_000);
        link.transfer(SimTime::ZERO, 500);
        let now = SimTime::from_ns(1000);
        assert!((link.utilization(now) - 0.5).abs() < 1e-9);
        let bps = link.achieved_bps(now);
        assert!((bps - 5e8).abs() < 1.0, "bps was {bps}");
    }

    #[test]
    fn tiny_transfer_takes_at_least_one_ns() {
        let link = BandwidthLink::new(u64::MAX / 2);
        assert_eq!(link.service_time(1).as_ns(), 1);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        BandwidthLink::new(0);
    }
}
