//! Simulated time: nanosecond-resolution instants and durations.
//!
//! All AstriFlash experiments operate between ~1 ns (on-chip events) and
//! ~100 ms (flash garbage collection), so a `u64` nanosecond counter gives
//! ample range (584 years) with no floating-point drift.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in nanoseconds from simulation
/// start.
///
/// `SimTime` is an absolute point; use [`SimDuration`] for spans.
///
/// # Example
///
/// ```
/// use astriflash_sim::{SimTime, SimDuration};
/// let t = SimTime::from_us(3) + SimDuration::from_ns(500);
/// assert_eq!(t.as_ns(), 3_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The zero instant (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ns` nanoseconds from simulation start.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `us` microseconds from simulation start.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant `ms` milliseconds from simulation start.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant `s` seconds from simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (fractional).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since simulation start (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is after `self`, making
    /// it safe for slightly out-of-order bookkeeping.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `ns` nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span of `us` microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span of `ms` milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from fractional microseconds, rounding to the
    /// nearest nanosecond. Negative inputs clamp to zero.
    pub fn from_us_f64(us: f64) -> Self {
        SimDuration((us * 1_000.0).round().max(0.0) as u64)
    }

    /// Creates a span from fractional nanoseconds, rounding to the
    /// nearest nanosecond. Negative inputs clamp to zero.
    pub fn from_ns_f64(ns: f64) -> Self {
        SimDuration(ns.round().max(0.0) as u64)
    }

    /// The span in whole nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// The span in fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked multiplication by an integer factor.
    pub fn checked_mul(self, factor: u64) -> Option<SimDuration> {
        self.0.checked_mul(factor).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = self.saturating_sub(rhs);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_scales() {
        assert_eq!(SimTime::from_us(1).as_ns(), 1_000);
        assert_eq!(SimTime::from_ms(1).as_ns(), 1_000_000);
        assert_eq!(SimTime::from_secs(1).as_ns(), 1_000_000_000);
        assert_eq!(SimDuration::from_us(2).as_ns(), 2_000);
        assert_eq!(SimDuration::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(SimDuration::from_secs(2).as_ns(), 2_000_000_000);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_ns(100);
        let d = SimDuration::from_ns(40);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_ns(5);
        let late = SimTime::from_ns(10);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_ns(), 5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn duration_from_float_rounds_and_clamps() {
        assert_eq!(SimDuration::from_us_f64(1.2345).as_ns(), 1_235);
        assert_eq!(SimDuration::from_us_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_ns_f64(0.6).as_ns(), 1);
    }

    #[test]
    fn display_is_human_scaled() {
        assert_eq!(SimDuration::from_ns(999).to_string(), "999ns");
        assert_eq!(SimDuration::from_us(1).to_string(), "1.000us");
        assert_eq!(SimDuration::from_ms(1).to_string(), "1.000ms");
        assert_eq!(SimDuration::from_secs(1).to_string(), "1.000s");
    }

    #[test]
    fn sum_and_scale() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ns).sum();
        assert_eq!(total.as_ns(), 10);
        assert_eq!((SimDuration::from_ns(10) * 3).as_ns(), 30);
        assert_eq!((SimDuration::from_ns(10) / 4).as_ns(), 2);
    }

    #[test]
    fn add_saturates_at_max() {
        assert_eq!(SimTime::MAX + SimDuration::from_ns(1), SimTime::MAX);
        assert_eq!(SimDuration::MAX + SimDuration::from_ns(1), SimDuration::MAX);
    }
}
