//! The event queue at the heart of every simulation.
//!
//! Events are ordered by timestamp; ties are broken by insertion order so
//! a simulation is a deterministic function of its inputs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered, insertion-stable priority queue of simulation events.
///
/// The payload type `E` is chosen by the composer (typically an enum of
/// every event kind in the system).
///
/// # Example
///
/// ```
/// use astriflash_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ns(5), "b");
/// q.schedule(SimTime::from_ns(5), "c");
/// q.schedule(SimTime::from_ns(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first, and
        // among equal timestamps the lowest sequence number (FIFO).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the composer; we clamp to
    /// `now` and debug-assert to catch it in tests without poisoning long
    /// experiment runs.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        self.heap.push(Entry {
            at,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
        self.scheduled_total += 1;
    }

    /// Schedules `payload` at `now + delay_ns`.
    pub fn schedule_after_ns(&mut self, delay_ns: u64, payload: E) {
        let at = self.now + crate::time::SimDuration::from_ns(delay_ns);
        self.schedule(at, payload);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled (for progress reporting / run stats).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Advances the clock without an event (e.g. to close out statistics
    /// windows at the end of a run).
    ///
    /// # Panics
    ///
    /// Panics if `to` is before the current time.
    pub fn advance_to(&mut self, to: SimTime) {
        assert!(to >= self.now, "cannot advance clock backwards");
        self.now = to;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), 3);
        q.schedule(SimTime::from_ns(10), 1);
        q.schedule(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_ns(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(42));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), "first");
        q.pop();
        q.schedule_after_ns(5, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ns(15));
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_ns(1), ());
        q.schedule(SimTime::from_ns(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_us(3));
        assert_eq!(q.now(), SimTime::from_us(3));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_backwards_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_us(3));
        q.advance_to(SimTime::from_us(2));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), 10u64);
        q.schedule(SimTime::from_ns(50), 50);
        let (t, v) = q.pop().unwrap();
        assert_eq!((t.as_ns(), v), (10, 10));
        // Schedule between now and the pending event.
        q.schedule(SimTime::from_ns(20), 20);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![20, 50]);
    }
}
