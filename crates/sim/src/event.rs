//! The event queue at the heart of every simulation.
//!
//! Events are ordered by timestamp; ties are broken by insertion order so
//! a simulation is a deterministic function of its inputs.
//!
//! Three implementations share the same contract:
//!
//! * [`EventQueue`] — a hierarchical timer wheel with **batched slot
//!   dispatch**, the production queue. Scheduling and popping are O(1)
//!   amortized regardless of how many events are pending, which matters
//!   because the simulator's inner loop is dominated by queue traffic
//!   (every core hop, flash read, and timer is an event). When the pop
//!   path reaches a level-0 slot it drains the *whole* slot in one pass
//!   into a pooled ready buffer (sorted by sequence number once), so the
//!   per-level candidate scan and the FIFO tie-break are amortized over
//!   every event sharing that timestamp instead of being paid per pop.
//! * [`ScanEventQueue`] — the pre-batching timer wheel (per-pop candidate
//!   scan and per-pop min-sequence selection), retained as the reference
//!   the batched drain is differentially tested against and as the
//!   baseline for the `slot_drain` perf pair.
//! * [`HeapEventQueue`] — the original `BinaryHeap` queue, kept as the
//!   executable specification of the contract and as the baseline for
//!   the `event_queue_churn` perf pair.
//!
//! The wheel has [`LEVELS`] levels of [`SLOTS`] slots each; level `L`
//! slots span `64^L` ns, so the wheel covers `64^7 = 2^42` ns (≈ 73
//! simulated minutes) ahead of the cursor. Events beyond that horizon
//! park in an overflow list and are folded back in when the wheel runs
//! dry. Each level keeps a 64-bit occupancy bitmap so finding the next
//! non-empty slot is a `trailing_zeros`, not a scan.
//!
//! FIFO order among same-timestamp events is preserved exactly: every
//! entry carries its insertion sequence number, and a level-0 slot (which
//! holds a single timestamp) pops its minimum-sequence entry first.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Bits per wheel level (64 slots).
const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Slot-index mask.
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Number of wheel levels.
const LEVELS: usize = 7;
/// Horizon covered by the wheel, in ns ticks (`64^LEVELS`).
const WHEEL_SPAN: u64 = 1 << (SLOT_BITS * LEVELS as u32);

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

/// A time-ordered, insertion-stable priority queue of simulation events,
/// implemented as a hierarchical timer wheel.
///
/// The payload type `E` is chosen by the composer (typically an enum of
/// every event kind in the system).
///
/// # Example
///
/// ```
/// use astriflash_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ns(5), "b");
/// q.schedule(SimTime::from_ns(5), "c");
/// q.schedule(SimTime::from_ns(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// `LEVELS * SLOTS` buckets, indexed `level * SLOTS + slot`.
    slots: Box<[Vec<Entry<E>>]>,
    /// Per-level occupancy bitmaps.
    occupied: [u64; LEVELS],
    /// Events farther than [`WHEEL_SPAN`] ahead of the cursor.
    overflow: Vec<Entry<E>>,
    /// Earliest overflow timestamp (`u64::MAX` when overflow is empty),
    /// so the pop loop can tell when overflow is due without scanning.
    overflow_min: u64,
    /// Batched-dispatch buffer: the most recently drained level-0 slot,
    /// sorted by sequence number **descending** so FIFO delivery is a
    /// `Vec::pop` from the back. All entries share one timestamp (a
    /// level-0 slot spans a single tick), which is what makes draining
    /// ahead of delivery safe: nothing scheduled later can come due
    /// before the buffer is empty, and same-tick events scheduled while
    /// the buffer drains carry higher sequence numbers, so they land in
    /// the (now empty) slot and are delivered after it — exactly the
    /// per-pop order. The buffer's allocation is pooled across drains.
    ready: Vec<Entry<E>>,
    /// Pending event count (wheel + overflow).
    pending: usize,
    seq: u64,
    now: SimTime,
    /// Wheel cursor in ns ticks. Invariant: every pending event's
    /// timestamp is `>= elapsed`, and `elapsed <= now` between pops.
    elapsed: u64,
    scheduled_total: u64,
    popped_total: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            ready: Vec::new(),
            pending: 0,
            seq: 0,
            now: SimTime::ZERO,
            elapsed: 0,
            scheduled_total: 0,
            popped_total: 0,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the composer; we clamp to
    /// `now` and debug-assert to catch it in tests without poisoning long
    /// experiment runs.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let entry = Entry {
            at,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.scheduled_total += 1;
        self.insert(entry);
    }

    /// Schedules `payload` at `now + delay_ns`.
    pub fn schedule_after_ns(&mut self, delay_ns: u64, payload: E) {
        let at = self.now + crate::time::SimDuration::from_ns(delay_ns);
        self.schedule(at, payload);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    ///
    /// Batched dispatch: the common case is a `Vec::pop` from the ready
    /// buffer filled by [`Self::drain_slot`]; the candidate scan and any
    /// cascades run only once per level-0 slot, not once per event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = match self.ready.pop() {
            Some(entry) => entry,
            None => {
                if self.pending == 0 {
                    return None;
                }
                self.drain_slot();
                self.ready.pop().expect("drain_slot fills the buffer")
            }
        };
        self.pending -= 1;
        self.popped_total += 1;
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }

    /// Advances the wheel (cascading higher levels, folding overflow back
    /// in) until a level-0 slot is due, then drains that whole slot into
    /// the ready buffer in one pass, sorted for FIFO delivery.
    ///
    /// Caller guarantees `pending > 0` and `ready` is empty.
    fn drain_slot(&mut self) {
        debug_assert!(self.ready.is_empty() && self.pending > 0);
        let _prof = astriflash_prof::scope(astriflash_prof::Scope::QueueCascade);
        loop {
            let candidate = self.next_candidate();
            // An overflow event may have become due before everything in
            // the wheel (the horizon is relative to the cursor at insert
            // time, not now). Fold overflow back in whenever its earliest
            // timestamp is at or before the earliest wheel candidate —
            // `<=` so same-timestamp FIFO is resolved by seq at pop time.
            if self.overflow_min <= candidate.map_or(u64::MAX, |(_, _, start)| start) {
                self.refill_from_overflow();
                continue;
            }
            match candidate {
                Some((0, slot, tick)) => {
                    // Level-0 slots span a single tick, so every entry
                    // shares the timestamp `tick`: take the whole slot in
                    // one pass and order it by sequence number once
                    // (descending, so delivery pops from the back). Both
                    // buffers keep their capacity — the slot's for future
                    // inserts, the ready buffer's for future drains.
                    debug_assert!(self.slots[slot].iter().all(|e| e.at.as_ns() == tick));
                    let ready = &mut self.ready;
                    ready.append(&mut self.slots[slot]);
                    self.occupied[0] &= !(1 << slot);
                    if self.ready.len() > 1 {
                        self.ready
                            .sort_unstable_by_key(|e| std::cmp::Reverse(e.seq));
                    }
                    self.elapsed = tick;
                    return;
                }
                Some((level, slot, slot_start)) => {
                    // Cascade: advance the cursor to the slot's start and
                    // redistribute its entries into lower levels. `drain`
                    // (rather than consuming the Vec) keeps the slot's
                    // allocation for the next events that land in it; a
                    // cascading entry never re-files into the slot it
                    // came from (its delta shrinks below the level span).
                    let idx = level * SLOTS + slot;
                    let mut bucket = std::mem::take(&mut self.slots[idx]);
                    self.occupied[level] &= !(1 << slot);
                    self.elapsed = slot_start;
                    self.pending -= bucket.len();
                    for entry in bucket.drain(..) {
                        self.insert(entry);
                    }
                    self.slots[idx] = bucket;
                }
                None => unreachable!("pending events but empty wheel and overflow"),
            }
        }
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        // Rarely used (nothing on the hot path peeks), so a plain scan of
        // every pending entry — including any drained-but-undelivered
        // ready batch — keeps this trivially correct.
        self.slots
            .iter()
            .flatten()
            .chain(self.overflow.iter())
            .chain(self.ready.iter())
            .map(|e| e.at)
            .min()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Total events ever scheduled (for progress reporting / run stats).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total events ever popped (for events/sec perf reporting).
    pub fn popped_total(&self) -> u64 {
        self.popped_total
    }

    /// Advances the clock without an event (e.g. to close out statistics
    /// windows at the end of a run).
    ///
    /// # Panics
    ///
    /// Panics if `to` is before the current time.
    pub fn advance_to(&mut self, to: SimTime) {
        assert!(to >= self.now, "cannot advance clock backwards");
        self.now = to;
    }

    /// Files an entry into the wheel (or overflow) based on its distance
    /// from the cursor. Caller maintains `tick >= self.elapsed`.
    fn insert(&mut self, entry: Entry<E>) {
        let tick = entry.at.as_ns();
        debug_assert!(tick >= self.elapsed);
        let delta = tick - self.elapsed;
        if delta >= WHEEL_SPAN {
            self.overflow_min = self.overflow_min.min(tick);
            self.overflow.push(entry);
        } else {
            let level = if delta < SLOTS as u64 {
                0
            } else {
                ((63 - delta.leading_zeros()) / SLOT_BITS) as usize
            };
            let slot = ((tick >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
            self.slots[level * SLOTS + slot].push(entry);
            self.occupied[level] |= 1 << slot;
        }
        self.pending += 1;
    }

    /// The earliest occupied `(level, slot, slot_start)` across all
    /// levels, or `None` when the whole wheel is empty (pending events,
    /// if any, are in overflow).
    ///
    /// On slot-start ties the **highest** level wins, so a higher-level
    /// slot whose range starts at a ready level-0 timestamp is cascaded
    /// before that timestamp pops — required for FIFO, since the
    /// higher-level slot may hold an older (lower-seq) event at the very
    /// same timestamp.
    fn next_candidate(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for level in 0..LEVELS {
            let occ = self.occupied[level];
            if occ == 0 {
                continue;
            }
            let shift = SLOT_BITS * level as u32;
            let width = 1u64 << shift;
            let range = width << SLOT_BITS;
            let pos = ((self.elapsed >> shift) & SLOT_MASK) as u32;
            let base = self.elapsed & !(range - 1);
            // Slots at or ahead of the cursor position belong to the
            // current rotation — with one exception. When the cursor sits
            // strictly *inside* its slot's range (possible at levels above
            // 0 once lower-level pops advanced it), that slot can only
            // hold next-rotation entries: current-rotation ones would
            // imply the cursor crossed the slot's start without cascading
            // it, which the candidate ordering forbids. When the cursor
            // sits exactly on the slot boundary (as it does right after a
            // cascade of a same-start higher slot), the slot's whole range
            // is still ahead and its entries are current-rotation.
            let aligned = self.elapsed & (width - 1) == 0;
            let ahead = if aligned {
                occ & (u64::MAX << pos)
            } else {
                occ & ((u64::MAX << pos) << 1)
            };
            let (slot, start) = if ahead != 0 {
                let s = ahead.trailing_zeros();
                (s as usize, base + u64::from(s) * width)
            } else {
                let s = occ.trailing_zeros();
                (s as usize, base + range + u64::from(s) * width)
            };
            if best.is_none_or(|(_, _, b)| start <= b) {
                best = Some((level, slot, start));
            }
        }
        best
    }

    /// The earliest overflow event is due: jump the cursor to its
    /// timestamp (safe — every pending event is at or after it) and fold
    /// every overflow event within the wheel's horizon back in.
    fn refill_from_overflow(&mut self) {
        let min_tick = self.overflow_min;
        debug_assert!(min_tick >= self.elapsed && !self.overflow.is_empty());
        self.elapsed = min_tick;
        self.overflow_min = u64::MAX;
        let mut i = 0;
        while i < self.overflow.len() {
            let tick = self.overflow[i].at.as_ns();
            if tick - min_tick < WHEEL_SPAN {
                let entry = self.overflow.swap_remove(i);
                self.pending -= 1; // insert() re-counts it
                self.insert(entry);
            } else {
                self.overflow_min = self.overflow_min.min(tick);
                i += 1;
            }
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// The pre-batching hierarchical timer wheel: per-pop candidate scan and
/// per-pop min-sequence selection inside the level-0 slot.
///
/// Retained as the executable specification the batched [`EventQueue`]
/// drain is differentially tested against (`tests/kernel_properties.rs`)
/// and as the baseline of the `slot_drain` pair in `perf_report`. The
/// algorithm is byte-for-byte the wheel as it shipped before batched
/// dispatch; only the slot-drain/delivery mechanics differ from
/// [`EventQueue`], so a divergence in their pop streams isolates the
/// batching as the cause.
#[derive(Debug)]
pub struct ScanEventQueue<E> {
    slots: Box<[Vec<Entry<E>>]>,
    occupied: [u64; LEVELS],
    overflow: Vec<Entry<E>>,
    overflow_min: u64,
    pending: usize,
    seq: u64,
    now: SimTime,
    elapsed: u64,
    scheduled_total: u64,
    popped_total: u64,
}

impl<E> ScanEventQueue<E> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        ScanEventQueue {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            pending: 0,
            seq: 0,
            now: SimTime::ZERO,
            elapsed: 0,
            scheduled_total: 0,
            popped_total: 0,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at` (clamped to `now`).
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let entry = Entry {
            at,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.scheduled_total += 1;
        self.insert(entry);
    }

    /// Schedules `payload` at `now + delay_ns`.
    pub fn schedule_after_ns(&mut self, delay_ns: u64, payload: E) {
        let at = self.now + crate::time::SimDuration::from_ns(delay_ns);
        self.schedule(at, payload);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Per-pop scan (the pre-batching algorithm).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.pending == 0 {
            return None;
        }
        loop {
            let candidate = self.next_candidate();
            if self.overflow_min <= candidate.map_or(u64::MAX, |(_, _, start)| start) {
                self.refill_from_overflow();
                continue;
            }
            match candidate {
                Some((0, slot, tick)) => {
                    let bucket = &mut self.slots[slot];
                    let mut best = 0;
                    for i in 1..bucket.len() {
                        if bucket[i].seq < bucket[best].seq {
                            best = i;
                        }
                    }
                    let entry = bucket.swap_remove(best);
                    if bucket.is_empty() {
                        self.occupied[0] &= !(1 << slot);
                    }
                    debug_assert_eq!(entry.at.as_ns(), tick);
                    self.elapsed = tick;
                    self.pending -= 1;
                    self.popped_total += 1;
                    self.now = entry.at;
                    return Some((entry.at, entry.payload));
                }
                Some((level, slot, slot_start)) => {
                    let bucket = std::mem::take(&mut self.slots[level * SLOTS + slot]);
                    self.occupied[level] &= !(1 << slot);
                    self.elapsed = slot_start;
                    self.pending -= bucket.len();
                    for entry in bucket {
                        self.insert(entry);
                    }
                }
                None => unreachable!("pending events but empty wheel and overflow"),
            }
        }
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.slots
            .iter()
            .flatten()
            .chain(self.overflow.iter())
            .map(|e| e.at)
            .min()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Total events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total events ever popped.
    pub fn popped_total(&self) -> u64 {
        self.popped_total
    }

    /// Advances the clock without an event.
    ///
    /// # Panics
    ///
    /// Panics if `to` is before the current time.
    pub fn advance_to(&mut self, to: SimTime) {
        assert!(to >= self.now, "cannot advance clock backwards");
        self.now = to;
    }

    fn insert(&mut self, entry: Entry<E>) {
        let tick = entry.at.as_ns();
        debug_assert!(tick >= self.elapsed);
        let delta = tick - self.elapsed;
        if delta >= WHEEL_SPAN {
            self.overflow_min = self.overflow_min.min(tick);
            self.overflow.push(entry);
        } else {
            let level = if delta < SLOTS as u64 {
                0
            } else {
                ((63 - delta.leading_zeros()) / SLOT_BITS) as usize
            };
            let slot = ((tick >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
            self.slots[level * SLOTS + slot].push(entry);
            self.occupied[level] |= 1 << slot;
        }
        self.pending += 1;
    }

    fn next_candidate(&self) -> Option<(usize, usize, u64)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for level in 0..LEVELS {
            let occ = self.occupied[level];
            if occ == 0 {
                continue;
            }
            let shift = SLOT_BITS * level as u32;
            let width = 1u64 << shift;
            let range = width << SLOT_BITS;
            let pos = ((self.elapsed >> shift) & SLOT_MASK) as u32;
            let base = self.elapsed & !(range - 1);
            let aligned = self.elapsed & (width - 1) == 0;
            let ahead = if aligned {
                occ & (u64::MAX << pos)
            } else {
                occ & ((u64::MAX << pos) << 1)
            };
            let (slot, start) = if ahead != 0 {
                let s = ahead.trailing_zeros();
                (s as usize, base + u64::from(s) * width)
            } else {
                let s = occ.trailing_zeros();
                (s as usize, base + range + u64::from(s) * width)
            };
            if best.is_none_or(|(_, _, b)| start <= b) {
                best = Some((level, slot, start));
            }
        }
        best
    }

    fn refill_from_overflow(&mut self) {
        let min_tick = self.overflow_min;
        debug_assert!(min_tick >= self.elapsed && !self.overflow.is_empty());
        self.elapsed = min_tick;
        self.overflow_min = u64::MAX;
        let mut i = 0;
        while i < self.overflow.len() {
            let tick = self.overflow[i].at.as_ns();
            if tick - min_tick < WHEEL_SPAN {
                let entry = self.overflow.swap_remove(i);
                self.pending -= 1; // insert() re-counts it
                self.insert(entry);
            } else {
                self.overflow_min = self.overflow_min.min(tick);
                i += 1;
            }
        }
    }
}

impl<E> Default for ScanEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// The original `BinaryHeap`-backed event queue.
///
/// Kept as the executable specification of the queue contract: the
/// differential property tests pop interleaved schedules from this and
/// from [`EventQueue`] and require identical streams, and the perf
/// benchmarks use it as the baseline the timer wheel is measured against.
#[derive(Debug)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

#[derive(Debug)]
struct HeapEntry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first, and
        // among equal timestamps the lowest sequence number (FIFO).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at` (clamped to `now`).
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        self.heap.push(HeapEntry {
            at,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
        self.scheduled_total += 1;
    }

    /// Schedules `payload` at `now + delay_ns`.
    pub fn schedule_after_ns(&mut self, delay_ns: u64, payload: E) {
        let at = self.now + crate::time::SimDuration::from_ns(delay_ns);
        self.schedule(at, payload);
    }

    /// Removes and returns the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Advances the clock without an event.
    ///
    /// # Panics
    ///
    /// Panics if `to` is before the current time.
    pub fn advance_to(&mut self, to: SimTime) {
        assert!(to >= self.now, "cannot advance clock backwards");
        self.now = to;
    }
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), 3);
        q.schedule(SimTime::from_ns(10), 1);
        q.schedule(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_ns(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(42));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), "first");
        q.pop();
        q.schedule_after_ns(5, "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ns(15));
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_ns(1), ());
        q.schedule(SimTime::from_ns(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_us(3));
        assert_eq!(q.now(), SimTime::from_us(3));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_backwards_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_us(3));
        q.advance_to(SimTime::from_us(2));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), 10u64);
        q.schedule(SimTime::from_ns(50), 50);
        let (t, v) = q.pop().unwrap();
        assert_eq!((t.as_ns(), v), (10, 10));
        // Schedule between now and the pending event.
        q.schedule(SimTime::from_ns(20), 20);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![20, 50]);
    }

    #[test]
    fn far_future_events_park_in_overflow_and_return() {
        let mut q = EventQueue::new();
        let far = WHEEL_SPAN * 3 + 17;
        q.schedule(SimTime::from_ns(far), "far");
        q.schedule(SimTime::from_ns(5), "near");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().map(|(t, e)| (t.as_ns(), e)), Some((5, "near")));
        assert_eq!(q.pop().map(|(t, e)| (t.as_ns(), e)), Some((far, "far")));
        assert!(q.is_empty());
    }

    #[test]
    fn same_timestamp_split_across_levels_pops_fifo() {
        // seq 0 lands in a high level (scheduled from t=0), then after the
        // cursor advances a same-timestamp event lands in level 0. The
        // cascade-before-pop tie rule must still deliver seq order.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(64), 0u64); // level 1 from elapsed=0
        q.schedule(SimTime::from_ns(10), 99);
        assert_eq!(q.pop().map(|(_, e)| e), Some(99)); // elapsed = 10
        q.schedule(SimTime::from_ns(64), 1); // level 0 (wrapped) from elapsed=10
        assert_eq!(q.pop().map(|(_, e)| e), Some(0));
        assert_eq!(q.pop().map(|(_, e)| e), Some(1));
    }

    #[test]
    fn peek_time_reports_minimum_without_popping() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_ns(WHEEL_SPAN + 9), 1u64);
        q.schedule(SimTime::from_ns(300), 2);
        q.schedule(SimTime::from_ns(70_000), 3);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(300)));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn popped_total_counts_pops() {
        let mut q = EventQueue::new();
        for i in 0..5u64 {
            q.schedule(SimTime::from_ns(i * 100), i);
        }
        q.pop();
        q.pop();
        assert_eq!(q.popped_total(), 2);
        assert_eq!(q.scheduled_total(), 5);
    }

    #[test]
    fn batched_drain_preserves_fifo_within_a_tick() {
        // A burst of same-timestamp events is drained in one pass and
        // must still deliver in insertion order, interleaved with events
        // scheduled at the same tick *while* the batch drains.
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::from_ns(5), i);
        }
        // Deliver half the batch, then add two more at the same tick.
        for i in 0..5 {
            assert_eq!(q.pop().map(|(_, e)| e), Some(i));
        }
        q.schedule(SimTime::from_ns(5), 10);
        q.schedule(SimTime::from_ns(5), 11);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![5, 6, 7, 8, 9, 10, 11]);
    }

    #[test]
    fn peek_and_len_see_the_ready_batch() {
        let mut q = EventQueue::new();
        for i in 0..4 {
            q.schedule(SimTime::from_ns(9), i);
        }
        q.schedule(SimTime::from_ns(100), 99);
        assert_eq!(q.pop().map(|(_, e)| e), Some(0)); // drains the tick-9 slot
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(9)));
        assert_eq!(q.popped_total(), 1);
    }

    #[test]
    fn scan_reference_matches_batched_wheel_on_dense_pattern() {
        let mut batched = EventQueue::new();
        let mut scan = ScanEventQueue::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut tag = 0u64;
        for round in 0..3_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(round | 1);
            // Bursts: several events at one delay to exercise the batch.
            let delay = state >> 48;
            let burst = 1 + (state >> 62);
            for _ in 0..burst {
                batched.schedule_after_ns(delay, tag);
                scan.schedule_after_ns(delay, tag);
                tag += 1;
            }
            let b = batched.pop();
            let s = scan.pop();
            assert_eq!(b, s);
            assert_eq!(batched.now(), scan.now());
            assert_eq!(batched.len(), scan.len());
            assert_eq!(batched.popped_total(), scan.popped_total());
        }
        loop {
            let b = batched.pop();
            assert_eq!(b, scan.pop());
            if b.is_none() {
                break;
            }
        }
    }

    #[test]
    fn heap_reference_queue_matches_contract() {
        let mut q = HeapEventQueue::new();
        q.schedule(SimTime::from_ns(5), "b");
        q.schedule(SimTime::from_ns(5), "c");
        q.schedule(SimTime::from_ns(1), "a");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn dense_interleaved_pattern_matches_heap() {
        // A deterministic torture loop (no RNG needed here; the prop test
        // in tests/ covers randomized schedules).
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut tag = 0u64;
        let mut state = 0x9e3779b97f4a7c15u64;
        for round in 0..2_000u64 {
            // Three pseudo-random schedules per round, then one pop.
            for _ in 0..3 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(round | 1);
                let delay = state >> 45; // 0..2^19 ns
                wheel.schedule_after_ns(delay, tag);
                heap.schedule_after_ns(delay, tag);
                tag += 1;
            }
            let w = wheel.pop();
            let h = heap.pop();
            assert_eq!(
                w.map(|(t, e)| (t.as_ns(), e)),
                h.map(|(t, e)| (t.as_ns(), e))
            );
            assert_eq!(wheel.now(), heap.now());
        }
        // Drain fully.
        loop {
            let w = wheel.pop();
            let h = heap.pop();
            assert_eq!(
                w.map(|(t, e)| (t.as_ns(), e)),
                h.map(|(t, e)| (t.as_ns(), e))
            );
            if w.is_none() {
                break;
            }
        }
    }
}
