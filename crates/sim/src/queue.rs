//! Bounded FIFO queues with occupancy accounting.
//!
//! Hardware queues (the backside-controller miss queue, flash channel
//! queues, per-core job queues) are finite; when they fill, upstream
//! producers stall. `BoundedQueue` tracks occupancy statistics so
//! experiments can report time-averaged depth and rejection counts.

use std::collections::VecDeque;

use crate::time::{SimDuration, SimTime};

/// A bounded FIFO with time-weighted occupancy statistics.
///
/// # Example
///
/// ```
/// use astriflash_sim::{BoundedQueue, SimTime};
/// let mut q = BoundedQueue::new(2);
/// assert!(q.push(SimTime::ZERO, 'a').is_ok());
/// assert!(q.push(SimTime::ZERO, 'b').is_ok());
/// assert!(q.push(SimTime::ZERO, 'c').is_err()); // full
/// assert_eq!(q.pop(SimTime::from_ns(5)), Some('a'));
/// ```
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    rejected: u64,
    accepted: u64,
    // Time-weighted occupancy integral for mean-depth reporting.
    last_change: SimTime,
    depth_time_product: u128,
    max_depth_seen: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            rejected: 0,
            accepted: 0,
            last_change: SimTime::ZERO,
            depth_time_product: 0,
            max_depth_seen: 0,
        }
    }

    fn account(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_change).as_ns() as u128;
        self.depth_time_product += dt * self.items.len() as u128;
        self.last_change = now;
    }

    /// Attempts to enqueue; on a full queue returns the item back as `Err`
    /// and counts a rejection.
    pub fn push(&mut self, now: SimTime, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.rejected += 1;
            return Err(item);
        }
        self.account(now);
        self.items.push_back(item);
        self.accepted += 1;
        self.max_depth_seen = self.max_depth_seen.max(self.items.len());
        Ok(())
    }

    /// Dequeues the oldest item, if any.
    pub fn pop(&mut self, now: SimTime) -> Option<T> {
        self.account(now);
        self.items.pop_front()
    }

    /// Peeks at the oldest item.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of rejected (queue-full) push attempts.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Number of successful pushes.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Highest occupancy ever reached.
    pub fn max_depth_seen(&self) -> usize {
        self.max_depth_seen
    }

    /// Time-averaged depth over `[0, now]`.
    pub fn mean_depth(&self, now: SimTime) -> f64 {
        let dt = now.saturating_since(self.last_change).as_ns() as u128;
        let integral = self.depth_time_product + dt * self.items.len() as u128;
        let elapsed = now.as_ns();
        if elapsed == 0 {
            0.0
        } else {
            integral as f64 / elapsed as f64
        }
    }

    /// Iterates items front-to-back without consuming them.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Removes and returns the first item matching `pred`, preserving the
    /// order of the others. Linear scan — fine for the short hardware
    /// queues this models.
    pub fn remove_first_where<F: FnMut(&T) -> bool>(
        &mut self,
        now: SimTime,
        mut pred: F,
    ) -> Option<T> {
        let idx = self.items.iter().position(&mut pred)?;
        self.account(now);
        self.items.remove(idx)
    }
}

/// Convenience: how long an item admitted at `enq` has waited by `now`.
pub fn wait_time(enq: SimTime, now: SimTime) -> SimDuration {
    now.saturating_since(enq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(SimTime::ZERO, i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(SimTime::ZERO), Some(i));
        }
        assert_eq!(q.pop(SimTime::ZERO), None);
    }

    #[test]
    fn rejects_when_full() {
        let mut q = BoundedQueue::new(1);
        q.push(SimTime::ZERO, 'x').unwrap();
        assert_eq!(q.push(SimTime::ZERO, 'y'), Err('y'));
        assert_eq!(q.rejected(), 1);
        assert_eq!(q.accepted(), 1);
        assert!(q.is_full());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        BoundedQueue::<u8>::new(0);
    }

    #[test]
    fn mean_depth_time_weighted() {
        let mut q = BoundedQueue::new(8);
        // Depth 1 during [0, 100), depth 2 during [100, 200).
        q.push(SimTime::ZERO, 1).unwrap();
        q.push(SimTime::from_ns(100), 2).unwrap();
        let mean = q.mean_depth(SimTime::from_ns(200));
        assert!((mean - 1.5).abs() < 1e-9, "mean was {mean}");
        assert_eq!(q.max_depth_seen(), 2);
    }

    #[test]
    fn remove_first_where_preserves_order() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(SimTime::ZERO, i).unwrap();
        }
        assert_eq!(q.remove_first_where(SimTime::ZERO, |&x| x == 2), Some(2));
        assert_eq!(q.remove_first_where(SimTime::ZERO, |&x| x == 9), None);
        let rest: Vec<i32> = std::iter::from_fn(|| q.pop(SimTime::ZERO)).collect();
        assert_eq!(rest, vec![0, 1, 3, 4]);
    }

    #[test]
    fn wait_time_helper() {
        let w = wait_time(SimTime::from_ns(10), SimTime::from_ns(35));
        assert_eq!(w.as_ns(), 25);
    }
}
