//! Deterministic fast hashing for hot-path lookup tables.
//!
//! The standard library's `HashMap` defaults to SipHash-1-3 behind a
//! per-process random seed. That is the right default for hash-flood
//! resistance, but wrong for a simulator: the keys here are page numbers
//! and block ids produced by the simulation itself (never adversarial),
//! SipHash costs tens of cycles per probe, and the random seed makes
//! iteration order differ between runs — a determinism hazard anywhere
//! iteration touches results.
//!
//! This module provides two in-tree, zero-dependency replacements:
//!
//! * [`FxHasher`] / [`FastHashMap`] — an FxHash-style multiplicative
//!   hasher (the rustc-internal design) with a fixed seed, as a drop-in
//!   `HashMap` replacement for composite keys.
//! * [`PageMap`] — a flat open-addressed table specialized for `u64`
//!   page-number keys (linear probing, power-of-two capacity,
//!   backward-shift deletion). This is the hottest lookup structure in
//!   the system: FTL translations, page-LRU residency, and in-flight
//!   miss maps are all page-keyed.
//!
//! Both are platform-independent: the same inserts produce the same
//! table layout (and thus iteration order, where exposed) on every
//! machine and every run.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Golden-ratio-derived odd multiplier used by FxHash.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style streaming hasher: `state = (rotl5(state) ^ word) * K`.
///
/// Deterministic (no random seed), very fast on the short integer keys
/// used throughout the simulator, and explicitly **not** DoS-resistant —
/// keys here come from the simulation itself, never from an adversary.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// A `HashMap` with the deterministic [`FxHasher`] instead of SipHash.
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Key sentinel marking an empty [`PageMap`] slot. Page numbers are
/// derived from dataset sizes (≪ 2^52 pages), so `u64::MAX` can never be
/// a real key.
const EMPTY: u64 = u64::MAX;

/// Minimum table capacity (power of two).
const MIN_CAPACITY: usize = 16;

/// A flat open-addressed map from `u64` page numbers to small copyable
/// values.
///
/// Linear probing over a power-of-two slot array, multiplicative
/// (Fibonacci) hashing taking the *high* bits of `key * K`, and
/// backward-shift deletion so no tombstones accumulate. Load factor is
/// kept below 3/4.
///
/// # Example
///
/// ```
/// use astriflash_sim::hash::PageMap;
/// let mut m = PageMap::new();
/// m.insert(42, 7u32);
/// assert_eq!(m.get(42), Some(7));
/// assert_eq!(m.remove(42), Some(7));
/// assert!(m.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct PageMap<V> {
    /// Parallel arrays: `keys[i] == EMPTY` marks a free slot.
    keys: Vec<u64>,
    vals: Vec<V>,
    len: usize,
    /// `capacity - 1`; capacity is always a power of two.
    mask: usize,
    /// `64 - log2(capacity)`: shift to take the high hash bits.
    shift: u32,
}

impl<V: Copy + Default> PageMap<V> {
    /// An empty map with the minimum capacity.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty map pre-sized to hold `n` entries without rehashing.
    pub fn with_capacity(n: usize) -> Self {
        // Smallest power of two that keeps n entries under 3/4 load.
        let mut cap = MIN_CAPACITY;
        while n.saturating_mul(4) >= cap * 3 {
            cap *= 2;
        }
        PageMap {
            keys: vec![EMPTY; cap],
            vals: vec![V::default(); cap],
            len: 0,
            mask: cap - 1,
            shift: 64 - cap.trailing_zeros(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot-array capacity (for pre-size tests).
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        // Fibonacci hashing: the high bits of key*K are well mixed for
        // the sequential-ish page numbers the simulator produces.
        (key.wrapping_mul(FX_SEED) >> self.shift) as usize
    }

    /// Index holding `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let mut i = self.slot_of(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(i);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Value for `key`, if present.
    #[inline]
    pub fn get(&self, key: u64) -> Option<V> {
        debug_assert_ne!(key, EMPTY);
        self.find(key).map(|i| self.vals[i])
    }

    /// Mutable access to the value for `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        debug_assert_ne!(key, EMPTY);
        self.find(key).map(|i| &mut self.vals[i])
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Inserts `key → val`, returning the previous value if any.
    #[inline]
    pub fn insert(&mut self, key: u64, val: V) -> Option<V> {
        debug_assert_ne!(key, EMPTY);
        if (self.len + 1) * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mut i = self.slot_of(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(std::mem::replace(&mut self.vals[i], val));
            }
            if k == EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes `key`, returning its value if present. Uses backward-shift
    /// deletion to keep probe chains contiguous without tombstones.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        debug_assert_ne!(key, EMPTY);
        let mut hole = self.find(key)?;
        let removed = self.vals[hole];
        self.len -= 1;
        let mut i = hole;
        loop {
            i = (i + 1) & self.mask;
            let k = self.keys[i];
            if k == EMPTY {
                break;
            }
            // If k's home slot is outside the (cyclic) range (hole, i],
            // it can legally move back into the hole.
            let home = self.slot_of(k);
            let dist_hole = i.wrapping_sub(hole) & self.mask;
            let dist_home = i.wrapping_sub(home) & self.mask;
            if dist_home >= dist_hole {
                self.keys[hole] = k;
                self.vals[hole] = self.vals[i];
                hole = i;
            }
        }
        self.keys[hole] = EMPTY;
        self.vals[hole] = V::default();
        Some(removed)
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.vals.fill(V::default());
        self.len = 0;
    }

    /// Iterates over `(key, value)` pairs in slot order — deterministic
    /// for a given insert/remove history, but *not* insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, V)> + '_ {
        self.keys
            .iter()
            .zip(self.vals.iter())
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, &v)| (k, v))
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![V::default(); new_cap]);
        self.mask = new_cap - 1;
        self.shift = 64 - new_cap.trailing_zeros();
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                self.insert(k, v);
            }
        }
    }
}

impl<V: Copy + Default> Default for PageMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx_hasher_is_deterministic_and_spreads() {
        let h = |k: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(k);
            hasher.finish()
        };
        assert_eq!(h(12345), h(12345));
        assert_ne!(h(1), h(2));
        // Sequential keys must not collide in the low bits hashbrown uses.
        let low: std::collections::HashSet<u64> = (0..1024u64).map(|k| h(k) & 0xfff).collect();
        assert!(low.len() > 900, "low-bit spread too poor: {}", low.len());
    }

    #[test]
    fn fx_hasher_write_matches_wordwise() {
        // write() over an 8-byte LE buffer equals write_u64.
        let mut a = FxHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn fast_hash_map_behaves_like_hashmap() {
        let mut m: FastHashMap<(usize, u32), u64> = FastHashMap::default();
        for i in 0..100usize {
            m.insert((i, i as u32 * 2), i as u64);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(7, 14)), Some(&7));
        assert_eq!(m.remove(&(7, 14)), Some(7));
        assert_eq!(m.get(&(7, 14)), None);
    }

    #[test]
    fn page_map_insert_get_remove() {
        let mut m = PageMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(5, 50u64), None);
        assert_eq!(m.insert(5, 55), Some(50));
        assert_eq!(m.get(5), Some(55));
        assert!(m.contains_key(5));
        assert_eq!(m.remove(5), Some(55));
        assert_eq!(m.remove(5), None);
        assert!(m.is_empty());
    }

    #[test]
    fn page_map_get_mut_updates_in_place() {
        let mut m = PageMap::new();
        m.insert(9, 1u32);
        *m.get_mut(9).unwrap() += 10;
        assert_eq!(m.get(9), Some(11));
        assert_eq!(m.get_mut(10), None);
    }

    #[test]
    fn page_map_grows_and_keeps_entries() {
        let mut m = PageMap::with_capacity(4);
        for k in 0..10_000u64 {
            m.insert(k * 3, k);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(m.get(k * 3), Some(k), "key {}", k * 3);
        }
    }

    #[test]
    fn page_map_with_capacity_avoids_rehash() {
        let mut m = PageMap::with_capacity(1000);
        let cap = m.capacity();
        for k in 0..1000u64 {
            m.insert(k, k);
        }
        assert_eq!(m.capacity(), cap, "pre-sized map must not rehash");
    }

    #[test]
    fn page_map_backward_shift_delete_preserves_chains() {
        // Build clusters, remove from the middle, and verify every
        // surviving key is still reachable.
        let mut m = PageMap::with_capacity(64);
        let keys: Vec<u64> = (0..48u64).map(|k| k * 7 + 1).collect();
        for &k in &keys {
            m.insert(k, k * 10);
        }
        for &k in keys.iter().step_by(3) {
            assert_eq!(m.remove(k), Some(k * 10));
        }
        for (i, &k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(m.get(k), None);
            } else {
                assert_eq!(m.get(k), Some(k * 10), "lost key {k}");
            }
        }
    }

    #[test]
    fn page_map_differential_against_hashmap() {
        // Deterministic pseudo-random op stream checked against HashMap.
        let mut m = PageMap::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..20_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (state >> 32) % 512; // small key space forces collisions
            let op = (state >> 29) & 0x7;
            if op < 5 {
                assert_eq!(m.insert(key, state), reference.insert(key, state));
            } else {
                assert_eq!(m.remove(key), reference.remove(&key));
            }
            assert_eq!(m.len(), reference.len());
        }
        for (&k, &v) in &reference {
            assert_eq!(m.get(k), Some(v));
        }
        let mut collected: Vec<(u64, u64)> = m.iter().collect();
        collected.sort_unstable();
        let mut expected: Vec<(u64, u64)> = reference.iter().map(|(&k, &v)| (k, v)).collect();
        expected.sort_unstable();
        assert_eq!(collected, expected);
    }

    #[test]
    fn page_map_clear_retains_capacity() {
        let mut m = PageMap::with_capacity(100);
        for k in 0..100u64 {
            m.insert(k, k);
        }
        let cap = m.capacity();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.capacity(), cap);
        assert_eq!(m.get(5), None);
        m.insert(5, 7);
        assert_eq!(m.get(5), Some(7));
    }
}
