//! Discrete-event simulation kernel for the AstriFlash reproduction.
//!
//! This crate provides the time base, deterministic random-number
//! generation, event queue, and shared-resource helpers (bounded queues,
//! bandwidth links) that every other simulation crate builds on.
//!
//! The design is deliberately *passive*: components are plain state
//! machines advanced by a system composer that owns the single
//! [`EventQueue`]. This sidesteps actor-graph borrow issues while keeping
//! every simulation fully deterministic for a given seed.
//!
//! # Example
//!
//! ```
//! use astriflash_sim::{EventQueue, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_ns(10), Ev::Pong);
//! q.schedule(SimTime::from_ns(5), Ev::Ping);
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_ns(5), Ev::Ping));
//! ```

#![warn(missing_docs)]

pub mod bandwidth;
pub mod event;
pub mod hash;
pub mod queue;
pub mod rng;
pub mod time;

pub use bandwidth::BandwidthLink;
pub use event::{EventQueue, HeapEventQueue, ScanEventQueue};
pub use hash::{FastHashMap, FxHasher, PageMap};
pub use queue::BoundedQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
