//! Deterministic random-number generation for simulations.
//!
//! Every experiment takes a single `u64` seed; identical seeds must
//! reproduce identical event streams across runs and platforms. We use
//! xoshiro256++ seeded through SplitMix64 — both are tiny, fast, and have
//! well-studied statistical quality — rather than pulling in an external
//! RNG whose stream might change between versions.

/// SplitMix64 step, used for seeding and cheap hashing of identifiers.
///
/// # Example
///
/// ```
/// use astriflash_sim::rng::splitmix64;
/// let mut state = 42;
/// let a = splitmix64(&mut state);
/// let b = splitmix64(&mut state);
/// assert_ne!(a, b);
/// ```
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent seed for one cell of a sweep (or any other
/// indexed stream) from a base seed.
///
/// The derivation depends only on `(base, stream)` — never on thread
/// scheduling — so the parallel sweep engine produces identical results
/// at any worker count. Distinct streams give decorrelated seeds even
/// for adjacent bases.
///
/// # Example
///
/// ```
/// use astriflash_sim::rng::derive_seed;
/// assert_eq!(derive_seed(1, 3), derive_seed(1, 3));
/// assert_ne!(derive_seed(1, 3), derive_seed(1, 4));
/// ```
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut s = base ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
    // Two rounds so that low-entropy (base, stream) pairs still spread
    // across the whole seed space.
    splitmix64(&mut s);
    splitmix64(&mut s)
}

/// A deterministic xoshiro256++ generator.
///
/// # Example
///
/// ```
/// use astriflash_sim::SimRng;
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro256++ requires a non-zero state; splitmix64 output of four
        // consecutive words is never all-zero, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Derives an independent child stream, e.g. one per core or device.
    ///
    /// Children of the same parent with different `stream` values produce
    /// decorrelated sequences.
    pub fn fork(&self, stream: u64) -> SimRng {
        let mut sm = self.s[0] ^ self.s[3] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        SimRng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's nearly-divisionless bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `(0, 1]`, safe as input to `ln()`.
    pub fn gen_f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0,1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used for Poisson inter-arrival times and memoryless service draws.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean >= 0.0);
        -mean * self.gen_f64_open().ln()
    }

    /// Standard normal via Box–Muller (single value; the pair's second
    /// element is discarded to keep state layout simple).
    pub fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.gen_f64_open();
        let u2 = self.gen_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * r * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Log-normal value parameterized by the *target* mean and sigma of the
    /// underlying normal. Useful for skewed service-time tails.
    pub fn gen_lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.gen_normal(mu, sigma).exp()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element index, or `None` for an empty slice.
    pub fn choose_index(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some(self.gen_range(len as u64) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_pure_and_spreads() {
        assert_eq!(derive_seed(9, 7), derive_seed(9, 7));
        // Adjacent bases and streams land far apart.
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!((a ^ b).count_ones() > 8);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        let parent = SimRng::new(99);
        let mut c0 = parent.fork(0);
        let mut c1 = parent.fork(1);
        let same = (0..64).filter(|_| c0.next_u64() == c1.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = SimRng::new(7);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v = rng.gen_range(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_panics() {
        SimRng::new(0).gen_range(0);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::new(42);
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            let o = rng.gen_f64_open();
            assert!(o > 0.0 && o <= 1.0);
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(5);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.gen_exp(10.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = SimRng::new(6);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.15, "var was {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements left them sorted");
    }

    #[test]
    fn choose_index_handles_empty() {
        let mut rng = SimRng::new(1);
        assert_eq!(rng.choose_index(0), None);
        assert!(rng.choose_index(3).unwrap() < 3);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = SimRng::new(8);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq was {freq}");
    }
}
