//! Log-bucketed histogram for latency distributions.
//!
//! Values are bucketed with 64 linear sub-buckets per power of two, giving
//! a worst-case relative error under 1.6 % — more than enough to resolve
//! the paper's p99 comparisons — while covering the full `u64` range in
//! ~64 KiB per histogram.

use crate::percentile::Percentile;

const SUB_BUCKET_BITS: u32 = 6; // 64 sub-buckets per octave
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// A fixed-memory, mergeable latency histogram.
///
/// Records `u64` values (nanoseconds by convention) and answers
/// percentile, mean, min and max queries.
///
/// # Example
///
/// ```
/// use astriflash_stats::Histogram;
/// let mut h = Histogram::new();
/// h.record(100);
/// h.record(200);
/// assert_eq!(h.count(), 2);
/// assert!(h.mean() > 100.0 && h.mean() < 210.0);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros(); // >= SUB_BUCKET_BITS here
    let shift = octave - SUB_BUCKET_BITS;
    let sub = ((value >> shift) as usize) & (SUB_BUCKETS - 1);
    // Octave SUB_BUCKET_BITS starts right after the SUB_BUCKETS linear slots.
    SUB_BUCKETS + ((octave - SUB_BUCKET_BITS) as usize) * SUB_BUCKETS + sub
}

fn bucket_upper_bound(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let rel = index - SUB_BUCKETS;
    let octave = SUB_BUCKET_BITS + (rel / SUB_BUCKETS) as u32;
    let sub = (rel % SUB_BUCKETS) as u64;
    let shift = octave - SUB_BUCKET_BITS;
    // Highest value that maps to this bucket.
    (((1u64 << SUB_BUCKET_BITS) + sub) << shift) + ((1u64 << shift) - 1)
}

const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BUCKET_BITS as usize) * SUB_BUCKETS;

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical observations.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at the given percentile (upper bucket bound, so the reported
    /// value is ≥ the true percentile, never below it by more than the
    /// bucket width).
    ///
    /// Returns 0 for an empty histogram.
    pub fn value_at(&self, p: Percentile) -> u64 {
        self.value_at_quantile(p.as_fraction())
    }

    /// Value at an arbitrary quantile `q ∈ [0, 1]`.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Resets to empty without releasing memory.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Fraction of observations at or below `value`.
    pub fn fraction_at_or_below(&self, value: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let idx = bucket_index(value);
        let below: u64 = self.buckets[..=idx].iter().sum();
        below as f64 / self.count as f64
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_bounds() {
        for value in [0u64, 1, 63, 64, 65, 100, 1000, 1 << 20, u64::MAX / 2] {
            let idx = bucket_index(value);
            let ub = bucket_upper_bound(idx);
            assert!(ub >= value, "value {value} idx {idx} ub {ub}");
            // Upper bound itself maps to the same bucket.
            assert_eq!(bucket_index(ub), idx, "value {value}");
            // Relative error bounded by one sub-bucket width.
            if value >= SUB_BUCKETS as u64 {
                assert!(
                    (ub - value) as f64 / value as f64 <= 1.0 / SUB_BUCKETS as f64 + 1e-12,
                    "value {value} ub {ub}"
                );
            }
        }
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.value_at_quantile(0.5), 31);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
    }

    #[test]
    fn percentiles_monotone() {
        let mut h = Histogram::new();
        let mut x = 12345u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x % 1_000_000);
        }
        let mut last = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let v = h.value_at_quantile(q);
            assert!(v >= last, "quantile {q} regressed: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn p99_close_to_exact() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let p99 = h.value_at(Percentile::P99) as f64;
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.02, "p99 {p99}");
    }

    #[test]
    fn mean_and_count() {
        let mut h = Histogram::new();
        h.record_n(10, 3);
        h.record(20);
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert!(a.max() >= 500);
    }

    #[test]
    fn empty_histogram_queries() {
        let h = Histogram::new();
        assert_eq!(h.value_at(Percentile::P99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new();
        h.record(42);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.value_at_quantile(0.5), 0);
    }

    #[test]
    fn fraction_at_or_below() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4] {
            h.record(v);
        }
        assert!((h.fraction_at_or_below(2) - 0.5).abs() < 1e-9);
        assert!((h.fraction_at_or_below(100) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = Histogram::new();
        h.record_n(10, 0);
        assert!(h.is_empty());
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.value_at_quantile(1.0) >= u64::MAX - 1);
    }
}
