//! Simple monotonically increasing counters and rate meters.

/// A named monotonic event counter.
///
/// # Example
///
/// ```
/// use astriflash_stats::Counter;
/// let mut c = Counter::new("dram_cache_misses");
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// Increments by one. Saturates at `u64::MAX` rather than wrapping:
    /// a pinned counter is a visible anomaly, a wrapped one is a lie.
    pub fn inc(&mut self) {
        self.value = self.value.saturating_add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Counter name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

/// Events-per-second meter over an explicit elapsed time.
///
/// Simulations know their own clock, so the meter is fed elapsed
/// nanoseconds rather than reading a wall clock.
#[derive(Debug, Clone, Default)]
pub struct RateMeter {
    events: u64,
}

impl RateMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        RateMeter::default()
    }

    /// Records `n` events, saturating at `u64::MAX`.
    pub fn record(&mut self, n: u64) {
        self.events = self.events.saturating_add(n);
    }

    /// Total events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Rate in events/second over `elapsed_ns` of simulated time.
    /// Returns 0 if no time has elapsed.
    pub fn rate_per_sec(&self, elapsed_ns: u64) -> f64 {
        if elapsed_ns == 0 {
            0.0
        } else {
            self.events as f64 * 1e9 / elapsed_ns as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let mut c = Counter::new("x");
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.name(), "x");
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn rate_meter_computes_rate() {
        let mut m = RateMeter::new();
        m.record(500);
        // 500 events over 1 ms = 500k/s.
        assert!((m.rate_per_sec(1_000_000) - 500_000.0).abs() < 1e-6);
        assert_eq!(m.rate_per_sec(0), 0.0);
        assert_eq!(m.events(), 500);
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let mut c = Counter::new("sat");
        c.add(u64::MAX - 1);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        c.add(1000);
        assert_eq!(c.get(), u64::MAX, "must pin at MAX, not wrap");
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_add_zero_is_identity() {
        let mut c = Counter::new("z");
        c.add(0);
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(0);
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn rate_meter_saturates_and_handles_zero_window() {
        let mut m = RateMeter::new();
        // Zero-window: no elapsed time must not divide by zero, even
        // with events recorded.
        m.record(7);
        assert_eq!(m.rate_per_sec(0), 0.0);
        // Saturation: events pin at MAX and the rate stays finite.
        m.record(u64::MAX);
        assert_eq!(m.events(), u64::MAX);
        let r = m.rate_per_sec(1);
        assert!(r.is_finite() && r > 0.0);
    }

    #[test]
    fn rate_meter_empty_is_zero_rate() {
        let m = RateMeter::new();
        assert_eq!(m.events(), 0);
        assert_eq!(m.rate_per_sec(1_000_000_000), 0.0);
    }
}
