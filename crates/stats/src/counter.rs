//! Simple monotonically increasing counters and rate meters.

/// A named monotonic event counter.
///
/// # Example
///
/// ```
/// use astriflash_stats::Counter;
/// let mut c = Counter::new("dram_cache_misses");
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Counter name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

/// Events-per-second meter over an explicit elapsed time.
///
/// Simulations know their own clock, so the meter is fed elapsed
/// nanoseconds rather than reading a wall clock.
#[derive(Debug, Clone, Default)]
pub struct RateMeter {
    events: u64,
}

impl RateMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        RateMeter::default()
    }

    /// Records `n` events.
    pub fn record(&mut self, n: u64) {
        self.events += n;
    }

    /// Total events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Rate in events/second over `elapsed_ns` of simulated time.
    /// Returns 0 if no time has elapsed.
    pub fn rate_per_sec(&self, elapsed_ns: u64) -> f64 {
        if elapsed_ns == 0 {
            0.0
        } else {
            self.events as f64 * 1e9 / elapsed_ns as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_resets() {
        let mut c = Counter::new("x");
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.name(), "x");
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn rate_meter_computes_rate() {
        let mut m = RateMeter::new();
        m.record(500);
        // 500 events over 1 ms = 500k/s.
        assert!((m.rate_per_sec(1_000_000) - 500_000.0).abs() < 1e-6);
        assert_eq!(m.rate_per_sec(0), 0.0);
        assert_eq!(m.events(), 500);
    }
}
