//! Minimal CSV writing for experiment series.
//!
//! The harness binaries emit both a human-readable table and a CSV file
//! (under `results/`) so the figures can be re-plotted with any tool.
//! Hand-rolled on purpose: the offline dependency set has no CSV crate,
//! and RFC-4180 quoting for numeric series is ~40 lines.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// An in-memory CSV document.
///
/// # Example
///
/// ```
/// use astriflash_stats::CsvDoc;
/// let mut doc = CsvDoc::new(&["load", "p99"]);
/// doc.row(&["0.5", "12.3"]);
/// assert_eq!(doc.render(), "load,p99\n0.5,12.3\n");
/// ```
#[derive(Debug, Clone)]
pub struct CsvDoc {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

impl CsvDoc {
    /// Creates a document with the given column names.
    pub fn new(header: &[&str]) -> Self {
        CsvDoc {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, fields: &[&str]) {
        let mut r: Vec<String> = fields
            .iter()
            .take(self.header.len())
            .map(|s| s.to_string())
            .collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, fields: Vec<String>) {
        let mut r = fields;
        r.truncate(self.header.len());
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders RFC-4180-style CSV text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            let _ = writeln!(out, "{}", line.join(","));
        };
        write_row(&mut out, &self.header);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Writes the document to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut d = CsvDoc::new(&["a", "b"]);
        d.row(&["1", "2"]);
        d.row_owned(vec!["3".into(), "4".into()]);
        assert_eq!(d.render(), "a,b\n1,2\n3,4\n");
        assert_eq!(d.num_rows(), 2);
    }

    #[test]
    fn quotes_special_fields() {
        let mut d = CsvDoc::new(&["x"]);
        d.row(&["has,comma"]);
        d.row(&["has\"quote"]);
        assert_eq!(d.render(), "x\n\"has,comma\"\n\"has\"\"quote\"\n");
    }

    #[test]
    fn pads_and_truncates() {
        let mut d = CsvDoc::new(&["a", "b"]);
        d.row(&["only"]);
        d.row(&["1", "2", "extra"]);
        assert_eq!(d.render(), "a,b\nonly,\n1,2\n");
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join("astriflash_csv_test");
        let path = dir.join("out.csv");
        let mut d = CsvDoc::new(&["v"]);
        d.row(&["42"]);
        d.write_to(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "v\n42\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
