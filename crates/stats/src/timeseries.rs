//! Sim-time-indexed gauge series.
//!
//! Periodic observability samples (MSR occupancy, flash queue depth,
//! per-core utilization…) are `(t_ns, value)` points. A [`TimeSeries`]
//! holds one gauge instance; `lane` disambiguates per-core/per-channel
//! instances of the same gauge name.

use crate::csv::CsvDoc;

/// One gauge instance's samples, in recording order.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    name: String,
    lane: u32,
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series for gauge `name`, instance `lane`.
    pub fn new(name: impl Into<String>, lane: u32) -> Self {
        TimeSeries {
            name: name.into(),
            lane,
            points: Vec::new(),
        }
    }

    /// Appends a sample.
    pub fn push(&mut self, t_ns: u64, value: f64) {
        self.points.push((t_ns, value));
    }

    /// Gauge name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instance index (core id, channel id, or 0).
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// The `(t_ns, value)` samples in recording order.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<(u64, f64)> {
        self.points.last().copied()
    }

    /// Mean of the sampled values (unweighted).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|(_, v)| v).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Maximum sampled value.
    pub fn max(&self) -> f64 {
        self.points.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max)
    }
}

/// Renders series in long form: one `t_ns,gauge,lane,value` row per
/// sample, series in input order, samples in recording order. The stable
/// schema the `trace_run` gauge CSV documents.
pub fn series_to_csv(series: &[TimeSeries]) -> CsvDoc {
    let mut doc = CsvDoc::new(&["t_ns", "gauge", "lane", "value"]);
    for s in series {
        for &(t_ns, value) in s.points() {
            doc.row_owned(vec![
                t_ns.to_string(),
                s.name().to_string(),
                s.lane().to_string(),
                format!("{value}"),
            ]);
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_inspect() {
        let mut s = TimeSeries::new("msr_occupancy", 0);
        assert!(s.is_empty());
        s.push(10, 1.0);
        s.push(20, 3.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some((20, 3.0)));
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.name(), "msr_occupancy");
        assert_eq!(s.lane(), 0);
    }

    #[test]
    fn csv_long_form_is_stable() {
        let mut a = TimeSeries::new("runq_len", 1);
        a.push(5, 2.0);
        let mut b = TimeSeries::new("core_util", 0);
        b.push(5, 0.5);
        let doc = series_to_csv(&[a, b]);
        assert_eq!(
            doc.render(),
            "t_ns,gauge,lane,value\n5,runq_len,1,2\n5,core_util,0,0.5\n"
        );
    }

    #[test]
    fn empty_series_render_header_only() {
        let doc = series_to_csv(&[TimeSeries::new("x", 0)]);
        assert_eq!(doc.render(), "t_ns,gauge,lane,value\n");
        assert_eq!(doc.num_rows(), 0);
    }
}
