//! Fixed-window time-resolved telemetry primitives.
//!
//! End-of-run aggregates (histograms, rates) cannot show *when* a run
//! warmed up, when GC pressure spiked, or how long an SLO violation
//! lasted. The windowed layer answers those questions: simulated time is
//! cut into fixed windows of `window_ns`, and every observation lands in
//! the window containing its timestamp.
//!
//! * [`WindowedHist`] — one [`PhaseHist`] (log-linear, 32 sub-buckets
//!   per octave) per *non-empty* window: full per-window percentiles at
//!   a bounded memory cost. Empty windows store nothing.
//! * [`WindowSeries`] — one `u64` accumulator per window: counters
//!   (completions, GC erases) and duration accumulation
//!   ([`WindowSeries::add_span`] splits a busy interval across the
//!   windows it overlaps, so utilization never exceeds 1).
//!
//! Both types merge **bucket-wise / element-wise**, which is associative
//! and commutative — a merged series is independent of shard order and
//! worker count, the same argument that makes the sweep engine's
//! reports byte-identical at any `ASTRIFLASH_THREADS` value.
//!
//! Window assignment is `t_ns / window_ns` (integer floor): an event
//! exactly on a boundary belongs to the window that *starts* there.
//! Observations past the `max_windows` cap are counted in
//! [`WindowedHist::dropped`] / [`WindowSeries::dropped`] rather than
//! silently discarded — consumers treat a non-zero drop count as a
//! hard error (the telemetry CI smoke does).
//!
//! # Example
//!
//! ```
//! use astriflash_stats::WindowedHist;
//!
//! let mut h = WindowedHist::new(1_000);
//! h.record(10, 500);      // window 0
//! h.record(1_000, 700);   // exactly on the boundary -> window 1
//! h.record(2_500, 900);   // window 2
//! assert_eq!(h.num_windows(), 3);
//! assert_eq!(h.count(1), 1);
//! assert_eq!(h.quantile(1, 0.99), 700);
//! ```

use crate::phase::PhaseHist;

/// Default cap on the number of windows one series can hold. At the
/// default cap a fully dense [`WindowedHist`] costs ~60 MiB; real runs
/// stay far below it (a 200 ms run at 1 ms windows is 200 windows).
pub const DEFAULT_MAX_WINDOWS: usize = 4096;

/// The window containing `t_ns` for the given window size. Floor
/// division: a timestamp exactly on a boundary opens the next window.
///
/// # Panics
///
/// Panics if `window_ns` is zero.
pub fn window_index(t_ns: u64, window_ns: u64) -> usize {
    assert!(window_ns > 0, "window size must be positive");
    (t_ns / window_ns) as usize
}

/// A per-window log-linear latency histogram (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowedHist {
    window_ns: u64,
    /// `None` = window never received a sample (distinct from a window
    /// of zero-valued samples).
    wins: Vec<Option<Box<PhaseHist>>>,
    max_windows: usize,
    dropped: u64,
}

impl WindowedHist {
    /// Creates an empty windowed histogram with the default window cap.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero.
    pub fn new(window_ns: u64) -> Self {
        Self::with_max_windows(window_ns, DEFAULT_MAX_WINDOWS)
    }

    /// Creates an empty windowed histogram with an explicit window cap.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero or `max_windows` is zero.
    pub fn with_max_windows(window_ns: u64, max_windows: usize) -> Self {
        assert!(window_ns > 0, "window size must be positive");
        assert!(max_windows > 0, "need at least one window");
        WindowedHist {
            window_ns,
            wins: Vec::new(),
            max_windows,
            dropped: 0,
        }
    }

    /// The window size in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Number of windows touched so far (highest touched index + 1).
    pub fn num_windows(&self) -> usize {
        self.wins.len()
    }

    /// Observations rejected because they fell past the window cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records `value` at simulated time `t_ns`.
    pub fn record(&mut self, t_ns: u64, value: u64) {
        let w = window_index(t_ns, self.window_ns);
        if w >= self.max_windows {
            self.dropped += 1;
            return;
        }
        if w >= self.wins.len() {
            self.wins.resize_with(w + 1, || None);
        }
        self.wins[w]
            .get_or_insert_with(|| Box::new(PhaseHist::new()))
            .record(value);
    }

    /// The histogram for window `w`, if it received any samples.
    pub fn hist(&self, w: usize) -> Option<&PhaseHist> {
        self.wins.get(w).and_then(Option::as_deref)
    }

    /// Sample count in window `w` (0 for empty or out-of-range windows).
    pub fn count(&self, w: usize) -> u64 {
        self.hist(w).map_or(0, PhaseHist::count)
    }

    /// Value at quantile `q` in window `w` (0 for empty windows, the
    /// [`PhaseHist::value_at_quantile`] convention).
    pub fn quantile(&self, w: usize, q: f64) -> u64 {
        self.hist(w).map_or(0, |h| h.value_at_quantile(q))
    }

    /// The quantile-`q` series over all touched windows (empty windows
    /// read 0).
    pub fn quantile_series(&self, q: f64) -> Vec<u64> {
        (0..self.num_windows())
            .map(|w| self.quantile(w, q))
            .collect()
    }

    /// Bucket-wise merge of the windows in `range` into one histogram
    /// (out-of-range and empty windows contribute nothing) — e.g. the
    /// final-quartile reference for time-to-steady.
    pub fn merged_hist(&self, range: std::ops::Range<usize>) -> PhaseHist {
        let mut out = PhaseHist::new();
        for w in range {
            if let Some(h) = self.hist(w) {
                out.merge(h);
            }
        }
        out
    }

    /// Merges `other` window-by-window (bucket-wise add). Associative
    /// and commutative, so merged results are shard-order invariant.
    ///
    /// # Panics
    ///
    /// Panics if the window sizes differ.
    pub fn merge(&mut self, other: &WindowedHist) {
        assert_eq!(
            self.window_ns, other.window_ns,
            "cannot merge series with different window sizes"
        );
        if other.wins.len() > self.wins.len() {
            self.wins.resize_with(other.wins.len(), || None);
        }
        for (mine, theirs) in self.wins.iter_mut().zip(other.wins.iter()) {
            if let Some(h) = theirs {
                mine.get_or_insert_with(|| Box::new(PhaseHist::new()))
                    .merge(h);
            }
        }
        self.dropped += other.dropped;
    }
}

/// A per-window `u64` accumulator (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSeries {
    window_ns: u64,
    vals: Vec<u64>,
    max_windows: usize,
    dropped: u64,
}

impl WindowSeries {
    /// Creates an empty series with the default window cap.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero.
    pub fn new(window_ns: u64) -> Self {
        Self::with_max_windows(window_ns, DEFAULT_MAX_WINDOWS)
    }

    /// Creates an empty series with an explicit window cap.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero or `max_windows` is zero.
    pub fn with_max_windows(window_ns: u64, max_windows: usize) -> Self {
        assert!(window_ns > 0, "window size must be positive");
        assert!(max_windows > 0, "need at least one window");
        WindowSeries {
            window_ns,
            vals: Vec::new(),
            max_windows,
            dropped: 0,
        }
    }

    /// The window size in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Number of windows touched so far (highest touched index + 1).
    pub fn num_windows(&self) -> usize {
        self.vals.len()
    }

    /// Additions rejected because they fell past the window cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Adds `delta` to the window containing `t_ns`.
    pub fn add(&mut self, t_ns: u64, delta: u64) {
        let w = window_index(t_ns, self.window_ns);
        if w >= self.max_windows {
            self.dropped += 1;
            return;
        }
        if w >= self.vals.len() {
            self.vals.resize(w + 1, 0);
        }
        self.vals[w] += delta;
    }

    /// Distributes the half-open busy interval `[start_ns, end_ns)`
    /// across the windows it overlaps, nanosecond-exactly — the busy-time
    /// primitive behind per-channel utilization (which therefore never
    /// exceeds 1 per window). Empty or inverted intervals are no-ops; the
    /// portion past the window cap is counted as one drop.
    pub fn add_span(&mut self, start_ns: u64, end_ns: u64) {
        if end_ns <= start_ns {
            return;
        }
        let mut t = start_ns;
        while t < end_ns {
            let w = window_index(t, self.window_ns);
            if w >= self.max_windows {
                self.dropped += 1;
                return;
            }
            let window_end = (w as u64 + 1) * self.window_ns;
            let upto = window_end.min(end_ns);
            self.add(t, upto - t);
            t = upto;
        }
    }

    /// The accumulated value in window `w` (0 when untouched).
    pub fn get(&self, w: usize) -> u64 {
        self.vals.get(w).copied().unwrap_or(0)
    }

    /// Sum over all windows.
    pub fn total(&self) -> u64 {
        self.vals.iter().sum()
    }

    /// The per-window values (length = [`WindowSeries::num_windows`]).
    pub fn values(&self) -> &[u64] {
        &self.vals
    }

    /// Merges `other` element-wise (addition). Associative and
    /// commutative, so merged results are shard-order invariant.
    ///
    /// # Panics
    ///
    /// Panics if the window sizes differ.
    pub fn merge(&mut self, other: &WindowSeries) {
        assert_eq!(
            self.window_ns, other.window_ns,
            "cannot merge series with different window sizes"
        );
        if other.vals.len() > self.vals.len() {
            self.vals.resize(other.vals.len(), 0);
        }
        for (mine, theirs) in self.vals.iter_mut().zip(other.vals.iter()) {
            *mine += theirs;
        }
        self.dropped += other.dropped;
    }

    /// Merges `other` element-wise taking the **maximum** — for
    /// peak-style gauges (per-window MSR occupancy high-water mark),
    /// where addition would double-count. Still associative and
    /// commutative, so shard-order invariance holds.
    ///
    /// # Panics
    ///
    /// Panics if the window sizes differ.
    pub fn merge_max(&mut self, other: &WindowSeries) {
        assert_eq!(
            self.window_ns, other.window_ns,
            "cannot merge series with different window sizes"
        );
        if other.vals.len() > self.vals.len() {
            self.vals.resize(other.vals.len(), 0);
        }
        for (mine, theirs) in self.vals.iter_mut().zip(other.vals.iter()) {
            *mine = (*mine).max(*theirs);
        }
        self.dropped += other.dropped;
    }

    /// Records `value` as a per-window maximum (companion to
    /// [`WindowSeries::merge_max`]).
    pub fn record_max(&mut self, t_ns: u64, value: u64) {
        let w = window_index(t_ns, self.window_ns);
        if w >= self.max_windows {
            self.dropped += 1;
            return;
        }
        if w >= self.vals.len() {
            self.vals.resize(w + 1, 0);
        }
        self.vals[w] = self.vals[w].max(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_goes_to_the_opening_window() {
        assert_eq!(window_index(0, 100), 0);
        assert_eq!(window_index(99, 100), 0);
        assert_eq!(window_index(100, 100), 1);
        assert_eq!(window_index(200, 100), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        window_index(5, 0);
    }

    #[test]
    fn hist_records_and_reports_per_window() {
        let mut h = WindowedHist::new(1_000);
        for i in 0..10u64 {
            h.record(500, 100 + i); // window 0
        }
        h.record(2_100, 9_999); // window 2; window 1 stays empty
        assert_eq!(h.num_windows(), 3);
        assert_eq!(h.count(0), 10);
        assert_eq!(h.count(1), 0);
        assert!(h.hist(1).is_none());
        assert_eq!(h.quantile(1, 0.99), 0);
        assert_eq!(h.count(2), 1);
        let p99 = h.quantile_series(0.99);
        assert_eq!(p99.len(), 3);
        assert_eq!(p99[1], 0);
        assert_eq!(p99[2], 9_999);
    }

    #[test]
    fn hist_merge_extends_and_adds() {
        let mut a = WindowedHist::new(100);
        a.record(50, 10);
        let mut b = WindowedHist::new(100);
        b.record(50, 20);
        b.record(250, 30);
        a.merge(&b);
        assert_eq!(a.num_windows(), 3);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.count(2), 1);
    }

    #[test]
    fn hist_cap_counts_drops() {
        let mut h = WindowedHist::with_max_windows(10, 4);
        h.record(39, 1); // window 3: last valid
        h.record(40, 1); // window 4: dropped
        assert_eq!(h.dropped(), 1);
        assert_eq!(h.num_windows(), 4);
    }

    #[test]
    fn merged_hist_covers_the_range() {
        let mut h = WindowedHist::new(100);
        h.record(10, 1_000);
        h.record(110, 2_000);
        h.record(210, 3_000);
        let tail = h.merged_hist(1..3);
        assert_eq!(tail.count(), 2);
        assert_eq!(tail.min(), 2_000);
        let all = h.merged_hist(0..h.num_windows());
        assert_eq!(all.count(), 3);
        assert_eq!(h.merged_hist(7..9).count(), 0);
    }

    #[test]
    fn series_add_and_total() {
        let mut s = WindowSeries::new(1_000);
        s.add(0, 2);
        s.add(999, 3);
        s.add(1_000, 5);
        assert_eq!(s.get(0), 5);
        assert_eq!(s.get(1), 5);
        assert_eq!(s.get(9), 0);
        assert_eq!(s.total(), 10);
        assert_eq!(s.values(), &[5, 5]);
    }

    #[test]
    fn add_span_splits_exactly() {
        let mut s = WindowSeries::new(100);
        // [50, 260): 50 ns in w0, 100 in w1, 60 in w2.
        s.add_span(50, 260);
        assert_eq!(s.values(), &[50, 100, 60]);
        assert_eq!(s.total(), 210);
        // Degenerate intervals are no-ops.
        s.add_span(40, 40);
        s.add_span(50, 10);
        assert_eq!(s.total(), 210);
        // Exactly filling one window.
        let mut t = WindowSeries::new(100);
        t.add_span(100, 200);
        assert_eq!(t.values(), &[0, 100]);
    }

    #[test]
    fn series_merge_and_merge_max() {
        let mut a = WindowSeries::new(10);
        a.add(5, 4);
        let mut b = WindowSeries::new(10);
        b.add(5, 3);
        b.add(25, 7);
        let mut sum = a.clone();
        sum.merge(&b);
        assert_eq!(sum.values(), &[7, 0, 7]);
        a.merge_max(&b);
        assert_eq!(a.values(), &[4, 0, 7]);
    }

    #[test]
    fn record_max_keeps_the_high_water_mark() {
        let mut s = WindowSeries::new(10);
        s.record_max(1, 5);
        s.record_max(2, 3);
        s.record_max(3, 9);
        assert_eq!(s.get(0), 9);
    }

    #[test]
    #[should_panic(expected = "different window sizes")]
    fn merge_rejects_mismatched_windows() {
        let mut a = WindowedHist::new(10);
        a.merge(&WindowedHist::new(20));
    }

    #[test]
    fn series_cap_counts_drops() {
        let mut s = WindowSeries::with_max_windows(10, 2);
        s.add(15, 1);
        s.add(20, 1); // window 2: dropped
        s.add_span(5, 35); // w0 + w1 recorded, remainder dropped once
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.values(), &[5, 11]);
    }
}
