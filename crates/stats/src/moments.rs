//! Streaming moments (Welford's algorithm): mean, variance, and
//! coefficient of variation without storing samples.
//!
//! Used for service-time dispersion in run reports — the paper's
//! queueing arguments (§III-A) care about whether service is
//! near-deterministic (CV ≪ 1) or memoryless (CV ≈ 1).

/// Online mean/variance accumulator.
///
/// # Example
///
/// ```
/// use astriflash_stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (0 with fewer than two samples).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Coefficient of variation (std dev / mean; 0 for zero mean).
    pub fn coefficient_of_variation(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.population_std_dev() / m
        }
    }

    /// Smallest sample (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator (Chan's parallel update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_example() {
        let mut s = OnlineStats::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.coefficient_of_variation(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut seq = OnlineStats::new();
        for &v in &all {
            seq.push(v);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &v in &all[..37] {
            a.push(v);
        }
        for &v in &all[37..] {
            b.push(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-9);
        assert!((a.population_variance() - seq.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn cv_distinguishes_deterministic_from_exponential() {
        let mut det = OnlineStats::new();
        for _ in 0..1000 {
            det.push(10.0);
        }
        assert!(det.coefficient_of_variation() < 1e-9);

        let mut exp = OnlineStats::new();
        let mut state = 7u64;
        for _ in 0..200_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = ((state >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
            exp.push(-10.0 * u.ln());
        }
        let cv = exp.coefficient_of_variation();
        assert!((cv - 1.0).abs() < 0.02, "exponential CV should be ~1: {cv}");
    }
}
