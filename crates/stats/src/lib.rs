//! Measurement substrate: histograms, percentiles, counters, and run
//! summaries used by every AstriFlash experiment.
//!
//! The core type is [`Histogram`], a log-bucketed latency histogram
//! (HDR-style) giving ~1 % relative error across ns-to-seconds ranges in a
//! few KiB of memory — exactly what tail-latency experiments need.
//!
//! # Example
//!
//! ```
//! use astriflash_stats::{Histogram, Percentile};
//!
//! let mut h = Histogram::new();
//! for v in 1..=1000u64 {
//!     h.record(v);
//! }
//! let p99 = h.value_at(Percentile::P99);
//! assert!((980..=1010).contains(&p99));
//! ```

#![warn(missing_docs)]

pub mod counter;
pub mod csv;
pub mod histogram;
pub mod moments;
pub mod percentile;
pub mod phase;
pub mod summary;
pub mod table;
pub mod timeseries;
pub mod window;

pub use counter::{Counter, RateMeter};
pub use csv::CsvDoc;
pub use histogram::Histogram;
pub use moments::OnlineStats;
pub use percentile::Percentile;
pub use phase::{Phase, PhaseHist, PhaseSet, PHASE_QUANTILES};
pub use summary::MetricSet;
pub use table::TextTable;
pub use timeseries::{series_to_csv, TimeSeries};
pub use window::{window_index, WindowSeries, WindowedHist, DEFAULT_MAX_WINDOWS};
