//! Ordered named-metric collections for run reports.
//!
//! Experiments accumulate heterogeneous metrics (counts, rates, ratios,
//! latencies); `MetricSet` keeps them ordered and renders them uniformly.

use std::fmt;

/// A single metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// An integer count.
    Count(u64),
    /// A dimensionless or unit-carrying float.
    Float(f64),
    /// A latency in nanoseconds (displayed human-scaled).
    LatencyNs(u64),
    /// A free-form label.
    Text(String),
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricValue::Count(v) => write!(f, "{v}"),
            MetricValue::Float(v) => write!(f, "{v:.4}"),
            MetricValue::LatencyNs(ns) => {
                let ns = *ns;
                if ns >= 1_000_000_000 {
                    write!(f, "{:.3}s", ns as f64 / 1e9)
                } else if ns >= 1_000_000 {
                    write!(f, "{:.3}ms", ns as f64 / 1e6)
                } else if ns >= 1_000 {
                    write!(f, "{:.3}us", ns as f64 / 1e3)
                } else {
                    write!(f, "{ns}ns")
                }
            }
            MetricValue::Text(s) => f.write_str(s),
        }
    }
}

/// An insertion-ordered set of named metrics.
///
/// # Example
///
/// ```
/// use astriflash_stats::MetricSet;
/// let mut m = MetricSet::new();
/// m.set_count("jobs", 100);
/// m.set_float("throughput_norm", 0.95);
/// assert_eq!(m.count("jobs"), Some(100));
/// assert!(m.render().contains("throughput_norm"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricSet {
    entries: Vec<(String, MetricValue)>,
}

impl MetricSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        MetricSet::default()
    }

    fn set(&mut self, name: &str, value: MetricValue) {
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| n == name) {
            e.1 = value;
        } else {
            self.entries.push((name.to_string(), value));
        }
    }

    /// Sets an integer count metric (replacing any existing value).
    pub fn set_count(&mut self, name: &str, v: u64) {
        self.set(name, MetricValue::Count(v));
    }

    /// Sets a float metric.
    pub fn set_float(&mut self, name: &str, v: f64) {
        self.set(name, MetricValue::Float(v));
    }

    /// Sets a latency metric in nanoseconds.
    pub fn set_latency_ns(&mut self, name: &str, v: u64) {
        self.set(name, MetricValue::LatencyNs(v));
    }

    /// Sets a text metric.
    pub fn set_text(&mut self, name: &str, v: impl Into<String>) {
        self.set(name, MetricValue::Text(v.into()));
    }

    /// Gets a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Gets a count metric's value.
    pub fn count(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Count(v) => Some(*v),
            _ => None,
        }
    }

    /// Gets a float metric's value (also accepts counts and latencies).
    pub fn float(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            MetricValue::Float(v) => Some(*v),
            MetricValue::Count(v) => Some(*v as f64),
            MetricValue::LatencyNs(v) => Some(*v as f64),
            MetricValue::Text(_) => None,
        }
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Renders as aligned `name: value` lines.
    pub fn render(&self) -> String {
        let width = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &self.entries {
            out.push_str(&format!("{name:<width$} : {value}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get_roundtrip() {
        let mut m = MetricSet::new();
        m.set_count("a", 1);
        m.set_float("b", 2.5);
        m.set_latency_ns("c", 1500);
        m.set_text("d", "hello");
        assert_eq!(m.count("a"), Some(1));
        assert_eq!(m.float("b"), Some(2.5));
        assert_eq!(m.float("c"), Some(1500.0));
        assert_eq!(m.count("missing"), None);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn replaces_existing_value() {
        let mut m = MetricSet::new();
        m.set_count("x", 1);
        m.set_count("x", 2);
        assert_eq!(m.count("x"), Some(2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn render_aligns_names() {
        let mut m = MetricSet::new();
        m.set_count("short", 1);
        m.set_count("much_longer_name", 2);
        let r = m.render();
        assert!(r.contains("short            : 1"));
        assert!(r.contains("much_longer_name : 2"));
    }

    #[test]
    fn latency_display_scales() {
        assert_eq!(MetricValue::LatencyNs(999).to_string(), "999ns");
        assert_eq!(MetricValue::LatencyNs(1_500).to_string(), "1.500us");
        assert_eq!(MetricValue::LatencyNs(2_000_000).to_string(), "2.000ms");
        assert_eq!(MetricValue::LatencyNs(3_000_000_000).to_string(), "3.000s");
    }

    #[test]
    fn float_of_text_is_none() {
        let mut m = MetricSet::new();
        m.set_text("t", "x");
        assert_eq!(m.float("t"), None);
    }
}
