//! Named percentiles and exact reference computation.

use std::fmt;

/// Commonly reported percentiles.
///
/// # Example
///
/// ```
/// use astriflash_stats::Percentile;
/// assert_eq!(Percentile::P99.as_fraction(), 0.99);
/// assert_eq!(Percentile::P99.to_string(), "p99");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Percentile {
    P50,
    P90,
    P95,
    P99,
    P999,
    P9999,
}

impl Percentile {
    /// The percentile as a fraction in `(0, 1)`.
    pub fn as_fraction(self) -> f64 {
        match self {
            Percentile::P50 => 0.50,
            Percentile::P90 => 0.90,
            Percentile::P95 => 0.95,
            Percentile::P99 => 0.99,
            Percentile::P999 => 0.999,
            Percentile::P9999 => 0.9999,
        }
    }

    /// All variants, in ascending order.
    pub fn all() -> [Percentile; 6] {
        [
            Percentile::P50,
            Percentile::P90,
            Percentile::P95,
            Percentile::P99,
            Percentile::P999,
            Percentile::P9999,
        ]
    }
}

impl fmt::Display for Percentile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Percentile::P50 => "p50",
            Percentile::P90 => "p90",
            Percentile::P95 => "p95",
            Percentile::P99 => "p99",
            Percentile::P999 => "p99.9",
            Percentile::P9999 => "p99.99",
        };
        f.write_str(s)
    }
}

/// Exact percentile of a slice (nearest-rank method). Used as the test
/// oracle for [`crate::Histogram`].
///
/// Returns `None` for an empty slice.
pub fn exact_percentile(values: &mut [u64], q: f64) -> Option<u64> {
    if values.is_empty() {
        return None;
    }
    values.sort_unstable();
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * values.len() as f64).ceil() as usize).max(1);
    Some(values[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_ascend() {
        let all = Percentile::all();
        for w in all.windows(2) {
            assert!(w[0].as_fraction() < w[1].as_fraction());
        }
    }

    #[test]
    fn exact_percentile_nearest_rank() {
        let mut v = vec![10, 20, 30, 40, 50];
        assert_eq!(exact_percentile(&mut v, 0.5), Some(30));
        assert_eq!(exact_percentile(&mut v, 1.0), Some(50));
        assert_eq!(exact_percentile(&mut v, 0.0), Some(10));
        assert_eq!(exact_percentile(&mut [], 0.5), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(Percentile::P999.to_string(), "p99.9");
        assert_eq!(Percentile::P50.to_string(), "p50");
    }
}
