//! Plain-text table rendering for figure/table harness output.
//!
//! The bench binaries print the paper's rows and series as aligned text
//! tables; this keeps the output diff-able and dependency-free.

use std::fmt::Write as _;

/// An aligned text table builder.
///
/// # Example
///
/// ```
/// use astriflash_stats::TextTable;
/// let mut t = TextTable::new(&["config", "norm_tput"]);
/// t.row(&["AstriFlash", "0.95"]);
/// t.row(&["OS-Swap", "0.58"]);
/// let s = t.render();
/// assert!(s.contains("AstriFlash"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows
    /// are truncated to the header width.
    pub fn row(&mut self, cells: &[&str]) {
        let mut r: Vec<String> = cells
            .iter()
            .take(self.headers.len())
            .map(|s| s.to_string())
            .collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
    }

    /// Appends a row of already-owned strings (for formatted values).
    pub fn row_owned(&mut self, cells: Vec<String>) {
        let mut r = cells;
        r.truncate(self.headers.len());
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with a header separator line.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{cell:<width$}", width = widths[c]);
                if c + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with the given number of decimal places (helper for
/// table rows).
pub fn fmt_f(v: f64, places: usize) -> String {
    format!("{v:.places$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "value" column starts at the same offset.
        let off0 = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][off0..off0 + 1], "1");
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only"]);
        t.row(&["x", "y", "extra"]);
        assert_eq!(t.num_rows(), 2);
        let s = t.render();
        assert!(!s.contains("extra"));
    }

    #[test]
    fn fmt_f_places() {
        assert_eq!(fmt_f(0.95678, 2), "0.96");
        assert_eq!(fmt_f(1.0, 3), "1.000");
    }
}
