//! Per-phase latency attribution for DRAM-cache miss lifecycles.
//!
//! A miss that leaves the on-chip hierarchy spends its life in a fixed
//! sequence of phases — backside-controller admission (including MSR
//! stalls), the flash channel queue, the flash array read, the PCIe
//! transfer, the install into the DRAM cache, and finally the wait for
//! the scheduler to resume the blocked thread. [`Phase`] names those
//! stages, [`PhaseHist`] is a compact log-linear histogram for one of
//! them, and [`PhaseSet`] bundles one histogram per phase.
//!
//! The simulator records into a [`PhaseSet`] on every *completed* miss
//! lifecycle (a miss whose page arrived); the offline trace analyzer
//! (`astriflash-analyze`) reconstructs the same quantities from a
//! Perfetto trace and cross-validates them, so both instrumentation
//! layers keep each other honest.
//!
//! # Example
//!
//! ```
//! use astriflash_stats::{Phase, PhaseSet};
//!
//! let mut p = PhaseSet::new();
//! p.record(Phase::FlashRead, 100_000);
//! p.record(Phase::PcieXfer, 4_000);
//! assert_eq!(p.hist(Phase::FlashRead).count(), 1);
//! assert!(p.share(Phase::FlashRead) > 0.9);
//! ```

/// Sub-buckets per power of two. 32 gives a worst-case relative error
/// of ~3 % — enough to resolve per-phase p99s — in half the memory of
/// the 64-sub-bucket [`crate::Histogram`], which matters because a
/// [`PhaseSet`] carries seven of these.
const SUB_BUCKET_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BUCKET_BITS as usize) * SUB_BUCKETS;

/// The phases of a DRAM-cache miss lifecycle, in wall-clock order.
///
/// Every completed miss records [`Phase::AdmitWait`] and
/// [`Phase::ResumeDelay`]. A miss that *issued* the flash read also
/// records the four flash-path phases (queue / read / transfer /
/// install); a miss that *coalesced* onto an in-flight read records
/// [`Phase::CoalescedWait`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// First miss detection to admission resolution at the backside
    /// controller: tag-check and MSR processing, including every
    /// MSR-full stall/retry round.
    AdmitWait,
    /// Coalesced (duplicate) misses only: admission resolution to page
    /// arrival — the wait on someone else's in-flight flash read.
    CoalescedWait,
    /// Issuing misses only: time the read spent queued behind the flash
    /// plane (0 when the plane was idle).
    FlashQueue,
    /// Issuing misses only: the flash array read itself (tR).
    FlashRead,
    /// Issuing misses only: the PCIe/channel transfer of the fetched
    /// bytes.
    PcieXfer,
    /// Issuing misses only: transfer completion to the page being
    /// installed in the DRAM cache (controller overhead + BC
    /// processing + DRAM fill).
    Install,
    /// Page arrival to the thread actually running again (scheduler
    /// ready-queue wait; 0 for threads blocked synchronously).
    ResumeDelay,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 7;

    /// All phases, in lifecycle order.
    pub fn all() -> [Phase; Phase::COUNT] {
        [
            Phase::AdmitWait,
            Phase::CoalescedWait,
            Phase::FlashQueue,
            Phase::FlashRead,
            Phase::PcieXfer,
            Phase::Install,
            Phase::ResumeDelay,
        ]
    }

    /// Stable machine-readable name (used in CSV artifacts and the
    /// trace cross-validation).
    pub fn label(self) -> &'static str {
        match self {
            Phase::AdmitWait => "admit_msr_wait",
            Phase::CoalescedWait => "coalesced_wait",
            Phase::FlashQueue => "flash_chan_queue",
            Phase::FlashRead => "flash_read",
            Phase::PcieXfer => "pcie_xfer",
            Phase::Install => "bc_install",
            Phase::ResumeDelay => "resume_delay",
        }
    }

    /// Parses a [`Phase::label`] back into a phase.
    pub fn from_label(label: &str) -> Option<Phase> {
        Phase::all().into_iter().find(|p| p.label() == label)
    }

    /// Index into a [`PhaseSet`]'s histogram array.
    pub fn index(self) -> usize {
        match self {
            Phase::AdmitWait => 0,
            Phase::CoalescedWait => 1,
            Phase::FlashQueue => 2,
            Phase::FlashRead => 3,
            Phase::PcieXfer => 4,
            Phase::Install => 5,
            Phase::ResumeDelay => 6,
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros(); // >= SUB_BUCKET_BITS here
    let shift = octave - SUB_BUCKET_BITS;
    let sub = ((value >> shift) as usize) & (SUB_BUCKETS - 1);
    SUB_BUCKETS + ((octave - SUB_BUCKET_BITS) as usize) * SUB_BUCKETS + sub
}

fn bucket_upper_bound(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let rel = index - SUB_BUCKETS;
    let octave = SUB_BUCKET_BITS + (rel / SUB_BUCKETS) as u32;
    let sub = (rel % SUB_BUCKETS) as u64;
    let shift = octave - SUB_BUCKET_BITS;
    (((1u64 << SUB_BUCKET_BITS) + sub) << shift) + ((1u64 << shift) - 1)
}

/// A fixed-size log-linear histogram for one lifecycle phase.
///
/// Same geometry family as [`crate::Histogram`] but with 32 sub-buckets
/// per octave (~15 KiB). All storage is allocated at construction; the
/// hot-path [`PhaseHist::record`] touches one bucket and four scalars
/// and never allocates. Covers the full `u64` range, so `u64::MAX`
/// saturates into the last bucket rather than panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseHist {
    buckets: Box<[u64]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl PhaseHist {
    /// Creates an empty histogram (the only allocation this type does).
    pub fn new() -> Self {
        PhaseHist {
            buckets: vec![0u64; NUM_BUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation (nanoseconds by convention).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q ∈ [0, 1]`: the bucket's upper bound clamped
    /// to the observed `[min, max]`, matching [`crate::Histogram`]'s
    /// semantics. Returns 0 for an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper_bound(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Value at a named percentile.
    pub fn value_at(&self, p: crate::Percentile) -> u64 {
        self.value_at_quantile(p.as_fraction())
    }

    /// Merges another histogram into this one. Bucket-wise addition, so
    /// merging is associative and commutative and the result is
    /// independent of how observations were sharded.
    pub fn merge(&mut self, other: &PhaseHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

impl Default for PhaseHist {
    fn default() -> Self {
        Self::new()
    }
}

/// The reporting percentiles for phase breakdowns: p50 / p95 / p99 /
/// p99.9 as fractions.
pub const PHASE_QUANTILES: [f64; 4] = [0.50, 0.95, 0.99, 0.999];

/// One [`PhaseHist`] per [`Phase`]: the full per-phase latency
/// breakdown of a run (or of a merged set of sweep shards).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSet {
    hists: [PhaseHist; Phase::COUNT],
}

impl PhaseSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        PhaseSet {
            hists: std::array::from_fn(|_| PhaseHist::new()),
        }
    }

    /// Records one observation for `phase`.
    pub fn record(&mut self, phase: Phase, value_ns: u64) {
        self.hists[phase.index()].record(value_ns);
    }

    /// The histogram for `phase`.
    pub fn hist(&self, phase: Phase) -> &PhaseHist {
        &self.hists[phase.index()]
    }

    /// Whether no phase has any observations.
    pub fn is_empty(&self) -> bool {
        self.hists.iter().all(PhaseHist::is_empty)
    }

    /// Completed miss lifecycles recorded (every completed miss records
    /// exactly one `AdmitWait` observation).
    pub fn completed_misses(&self) -> u64 {
        self.hist(Phase::AdmitWait).count()
    }

    /// Total nanoseconds attributed across all phases.
    pub fn total_ns(&self) -> u128 {
        self.hists.iter().map(PhaseHist::sum).sum()
    }

    /// `phase`'s share of the total attributed time — its fraction of
    /// the summed critical path across all completed misses. 0 when
    /// nothing has been recorded.
    pub fn share(&self, phase: Phase) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            self.hist(phase).sum() as f64 / total as f64
        }
    }

    /// p50/p95/p99/p99.9 for `phase` (see [`PHASE_QUANTILES`]).
    pub fn percentiles(&self, phase: Phase) -> [u64; 4] {
        let h = self.hist(phase);
        PHASE_QUANTILES.map(|q| h.value_at_quantile(q))
    }

    /// Merges another set into this one phase-by-phase. Order-insensitive
    /// (see [`PhaseHist::merge`]), so sweep shards can be merged in
    /// completion order or slot order with identical results.
    pub fn merge(&mut self, other: &PhaseSet) {
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }
}

impl Default for PhaseSet {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::percentile::exact_percentile;

    #[test]
    fn bucket_roundtrip_bounds() {
        for value in [0u64, 1, 31, 32, 33, 100, 1000, 1 << 20, u64::MAX / 3, u64::MAX] {
            let idx = bucket_index(value);
            let ub = bucket_upper_bound(idx);
            assert!(ub >= value, "value {value} idx {idx} ub {ub}");
            assert_eq!(bucket_index(ub), idx, "value {value}");
            assert!(idx < NUM_BUCKETS);
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn percentiles_track_exact_within_resolution() {
        let mut h = PhaseHist::new();
        let mut values: Vec<u64> = (0..5000u64).map(|i| i * i % 700_001 + 50).collect();
        for &v in &values {
            h.record(v);
        }
        for q in PHASE_QUANTILES {
            let exact = exact_percentile(&mut values, q).unwrap();
            let est = h.value_at_quantile(q);
            assert!(est >= exact, "q {q}: est {est} < exact {exact}");
            // 32 sub-buckets per octave -> worst-case ~3.2 % high.
            assert!((est as f64) <= exact as f64 * 1.04 + 1.0, "q {q}: {est} vs {exact}");
        }
    }

    #[test]
    fn zero_and_saturation_edges() {
        let mut h = PhaseHist::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.value_at_quantile(0.0), 0);
        assert_eq!(h.value_at_quantile(1.0), u64::MAX);
    }

    #[test]
    fn phase_labels_roundtrip() {
        for p in Phase::all() {
            assert_eq!(Phase::from_label(p.label()), Some(p));
        }
        assert_eq!(Phase::from_label("nonsense"), None);
    }

    #[test]
    fn set_share_and_counts() {
        let mut s = PhaseSet::new();
        s.record(Phase::AdmitWait, 100);
        s.record(Phase::FlashRead, 900);
        s.record(Phase::ResumeDelay, 0);
        assert_eq!(s.completed_misses(), 1);
        assert_eq!(s.total_ns(), 1000);
        assert!((s.share(Phase::FlashRead) - 0.9).abs() < 1e-12);
        assert!((s.share(Phase::CoalescedWait)).abs() < 1e-12);

        let mut t = PhaseSet::new();
        t.record(Phase::FlashRead, 900);
        s.merge(&t);
        assert_eq!(s.hist(Phase::FlashRead).count(), 2);
    }
}
