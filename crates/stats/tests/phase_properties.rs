//! Property tests for the phase-attribution histograms: the merge
//! algebra (associative, commutative) and shard-count invariance that
//! the deterministic sweep merge relies on (DESIGN.md §11), plus the
//! domain edges (0 ns, `u64::MAX` saturation).

use astriflash_stats::{Phase, PhaseHist, PhaseSet, PHASE_QUANTILES};
use astriflash_testkit::prop_check;

/// A generated observation, biased toward the interesting scales: small
/// linear-range values, µs–ms scale latencies, and the extremes.
fn gen_value(g: &mut astriflash_testkit::TestRng) -> u64 {
    match g.u32_in(0..10) {
        0 => 0,
        1 => u64::MAX,
        2..=4 => g.u64_in(0..64),
        5..=7 => g.u64_in(1_000..10_000_000),
        _ => g.any_u64(),
    }
}

fn hist_of(values: &[u64]) -> PhaseHist {
    let mut h = PhaseHist::new();
    for &v in values {
        h.record(v);
    }
    h
}

#[test]
fn merge_is_commutative_and_associative() {
    prop_check!(cases: 64, |g| {
        let a = hist_of(&g.vec(0..40, gen_value));
        let b = hist_of(&g.vec(0..40, gen_value));
        let c = hist_of(&g.vec(0..40, gen_value));

        // a ∪ b == b ∪ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
    });
}

#[test]
fn merged_percentiles_are_shard_count_invariant() {
    prop_check!(cases: 48, |g| {
        let values = g.vec(1..200, gen_value);
        let whole = hist_of(&values);

        // Deal the same observations across k shards round-robin and
        // merge back: identical histogram, identical percentiles.
        let k = g.usize_in(2..9);
        let mut shards: Vec<PhaseHist> = (0..k).map(|_| PhaseHist::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            shards[i % k].record(v);
        }
        let mut merged = PhaseHist::new();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged, whole);
        for q in PHASE_QUANTILES {
            assert_eq!(merged.value_at_quantile(q), whole.value_at_quantile(q));
        }
        assert_eq!(merged.count(), values.len() as u64);
        assert_eq!(merged.sum(), values.iter().map(|&v| v as u128).sum());
    });
}

#[test]
fn quantiles_stay_within_observed_range() {
    prop_check!(cases: 64, |g| {
        let values = g.vec(1..100, gen_value);
        let h = hist_of(&values);
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 0.999, 1.0] {
            let v = h.value_at_quantile(q);
            assert!(v >= lo && v <= hi, "q {q}: {v} outside [{lo}, {hi}]");
        }
    });
}

#[test]
fn bucket_boundary_edges_hold() {
    // 0 and u64::MAX are exact fixed points of the bucket mapping.
    let mut h = PhaseHist::new();
    h.record(0);
    assert_eq!(h.value_at_quantile(1.0), 0);
    h.record(u64::MAX);
    assert_eq!(h.value_at_quantile(1.0), u64::MAX);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), u64::MAX);
    assert_eq!(h.sum(), u64::MAX as u128);

    // Merging an empty histogram is the identity.
    let before = h.clone();
    h.merge(&PhaseHist::new());
    assert_eq!(h, before);
}

#[test]
fn set_merge_is_phasewise_and_order_insensitive() {
    prop_check!(cases: 32, |g| {
        // Build n shard PhaseSets with random observations, then merge
        // in forward and reverse order: identical results.
        let n = g.usize_in(2..6);
        let shards: Vec<PhaseSet> = (0..n)
            .map(|_| {
                let mut s = PhaseSet::new();
                for _ in 0..g.usize_in(0..30) {
                    let phase = Phase::all()[g.usize_in(0..Phase::COUNT)];
                    s.record(phase, gen_value(g));
                }
                s
            })
            .collect();
        let mut fwd = PhaseSet::new();
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = PhaseSet::new();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd, rev);
        let total: u64 = shards.iter().map(|s| s.hist(Phase::AdmitWait).count()).sum();
        assert_eq!(fwd.completed_misses(), total);
    });
}
