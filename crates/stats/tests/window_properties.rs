//! Property tests for the windowed-telemetry layer (DESIGN.md §13):
//! window-boundary assignment, shard-order invariance of merged
//! `WindowedHist`/`WindowSeries`, and agreement with a scalar reference
//! implementation including empty-window handling.

use astriflash_stats::{window_index, PhaseHist, WindowSeries, WindowedHist, PHASE_QUANTILES};
use astriflash_testkit::prop_check;

/// A generated (timestamp, value) observation. Timestamps are biased to
/// cluster around window boundaries, since boundary assignment is the
/// property under test.
fn gen_obs(g: &mut astriflash_testkit::TestRng, window_ns: u64, max_windows: u64) -> (u64, u64) {
    let horizon = window_ns * max_windows;
    let t = match g.u32_in(0..10) {
        // Exactly on a window boundary.
        0..=2 => g.u64_in(0..max_windows) * window_ns,
        // One tick either side of a boundary.
        3 => (g.u64_in(1..max_windows) * window_ns).saturating_sub(1),
        4 => g.u64_in(0..max_windows) * window_ns + 1,
        _ => g.u64_in(0..horizon),
    };
    let v = match g.u32_in(0..8) {
        0 => 0,
        1..=5 => g.u64_in(100..5_000_000),
        _ => g.any_u64(),
    };
    (t, v)
}

/// Scalar reference: assign each observation to `t / window_ns` with
/// plain integer division and collect per-window value lists.
fn reference_windows(obs: &[(u64, u64)], window_ns: u64) -> Vec<Vec<u64>> {
    let mut wins: Vec<Vec<u64>> = Vec::new();
    for &(t, v) in obs {
        let w = (t / window_ns) as usize;
        if w >= wins.len() {
            wins.resize(w + 1, Vec::new());
        }
        wins[w].push(v);
    }
    wins
}

#[test]
fn boundary_events_open_the_next_window() {
    prop_check!(cases: 64, |g| {
        let window_ns = g.u64_in(1..100_000);
        let k = g.u64_in(0..1_000);
        let boundary = k * window_ns;
        // An event exactly on a boundary belongs to the window that
        // starts there...
        assert_eq!(window_index(boundary, window_ns), k as usize);
        // ...and the last tick before it belongs to the previous one.
        if boundary > 0 {
            assert_eq!(window_index(boundary - 1, window_ns), (k - 1) as usize);
        }
    });
}

#[test]
fn windowed_hist_matches_scalar_reference() {
    prop_check!(cases: 48, |g| {
        let window_ns = g.u64_in(10..10_000);
        let obs: Vec<(u64, u64)> = {
            let n = g.usize_in(0..150);
            (0..n).map(|_| gen_obs(g, window_ns, 64)).collect()
        };
        let mut h = WindowedHist::new(window_ns);
        for &(t, v) in &obs {
            h.record(t, v);
        }
        let reference = reference_windows(&obs, window_ns);
        assert_eq!(h.num_windows(), reference.len());
        for (w, vals) in reference.iter().enumerate() {
            assert_eq!(h.count(w), vals.len() as u64, "window {w}");
            if vals.is_empty() {
                // Empty windows store nothing and read zero quantiles.
                assert!(h.hist(w).is_none(), "window {w} should be empty");
                assert_eq!(h.quantile(w, 0.99), 0);
            } else {
                // A per-window histogram must equal one fed the same
                // values directly.
                let mut direct = PhaseHist::new();
                for &v in vals {
                    direct.record(v);
                }
                assert_eq!(h.hist(w), Some(&direct), "window {w}");
            }
        }
    });
}

#[test]
fn window_series_matches_scalar_reference() {
    prop_check!(cases: 48, |g| {
        let window_ns = g.u64_in(10..10_000);
        let obs: Vec<(u64, u64)> = {
            let n = g.usize_in(0..150);
            (0..n)
                .map(|_| {
                    let (t, _) = gen_obs(g, window_ns, 64);
                    (t, g.u64_in(0..1_000))
                })
                .collect()
        };
        let mut s = WindowSeries::new(window_ns);
        for &(t, d) in &obs {
            s.add(t, d);
        }
        let reference = reference_windows(&obs, window_ns);
        assert_eq!(s.num_windows(), reference.len());
        for (w, vals) in reference.iter().enumerate() {
            assert_eq!(s.get(w), vals.iter().sum::<u64>(), "window {w}");
        }
        assert_eq!(s.total(), obs.iter().map(|&(_, d)| d).sum::<u64>());
    });
}

#[test]
fn merged_hist_is_shard_order_invariant() {
    prop_check!(cases: 48, |g| {
        let window_ns = g.u64_in(10..10_000);
        let obs: Vec<(u64, u64)> = {
            let n = g.usize_in(1..200);
            (0..n).map(|_| gen_obs(g, window_ns, 64)).collect()
        };
        // One recorder sees everything; k shards see a round-robin deal.
        let mut whole = WindowedHist::new(window_ns);
        for &(t, v) in &obs {
            whole.record(t, v);
        }
        let k = g.usize_in(2..9);
        let mut shards: Vec<WindowedHist> =
            (0..k).map(|_| WindowedHist::new(window_ns)).collect();
        for (i, &(t, v)) in obs.iter().enumerate() {
            shards[i % k].record(t, v);
        }
        // Merge forward and in reverse: both equal the whole.
        let mut fwd = WindowedHist::new(window_ns);
        for s in &shards {
            fwd.merge(s);
        }
        let mut rev = WindowedHist::new(window_ns);
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(fwd, whole);
        assert_eq!(rev, whole);
        for w in 0..whole.num_windows() {
            for q in PHASE_QUANTILES {
                assert_eq!(fwd.quantile(w, q), whole.quantile(w, q));
            }
        }
    });
}

#[test]
fn merged_series_is_shard_order_invariant() {
    prop_check!(cases: 48, |g| {
        let window_ns = g.u64_in(10..10_000);
        let obs: Vec<(u64, u64)> = {
            let n = g.usize_in(1..200);
            (0..n)
                .map(|_| {
                    let (t, _) = gen_obs(g, window_ns, 64);
                    (t, g.u64_in(0..1_000))
                })
                .collect()
        };
        let mut whole = WindowSeries::new(window_ns);
        let mut whole_max = WindowSeries::new(window_ns);
        for &(t, d) in &obs {
            whole.add(t, d);
            whole_max.record_max(t, d);
        }
        let k = g.usize_in(2..9);
        let mut shards: Vec<(WindowSeries, WindowSeries)> = (0..k)
            .map(|_| (WindowSeries::new(window_ns), WindowSeries::new(window_ns)))
            .collect();
        for (i, &(t, d)) in obs.iter().enumerate() {
            shards[i % k].0.add(t, d);
            shards[i % k].1.record_max(t, d);
        }
        let mut fwd = WindowSeries::new(window_ns);
        let mut fwd_max = WindowSeries::new(window_ns);
        for (sum, peak) in &shards {
            fwd.merge(sum);
            fwd_max.merge_max(peak);
        }
        let mut rev = WindowSeries::new(window_ns);
        let mut rev_max = WindowSeries::new(window_ns);
        for (sum, peak) in shards.iter().rev() {
            rev.merge(sum);
            rev_max.merge_max(peak);
        }
        // Sums match exactly; peaks may differ in *trailing empty
        // windows only* (a shard that never saw the last windows stays
        // short), so compare per-window values.
        assert_eq!(fwd, whole);
        assert_eq!(rev, whole);
        for w in 0..whole_max.num_windows() {
            assert_eq!(fwd_max.get(w), whole_max.get(w), "peak window {w}");
            assert_eq!(rev_max.get(w), whole_max.get(w), "peak window {w}");
        }
    });
}

#[test]
fn add_span_conserves_nanoseconds() {
    prop_check!(cases: 64, |g| {
        let window_ns = g.u64_in(10..10_000);
        let mut s = WindowSeries::new(window_ns);
        let mut expected = 0u64;
        for _ in 0..g.usize_in(0..30) {
            let start = g.u64_in(0..window_ns * 50);
            let len = g.u64_in(0..window_ns * 5);
            s.add_span(start, start + len);
            expected += len;
            // No window can hold more than its own length.
            for w in 0..s.num_windows() {
                assert!(s.get(w) <= window_ns * 30, "window {w} overfull");
            }
        }
        assert_eq!(s.total(), expected, "span splitting must conserve time");
        assert_eq!(s.dropped(), 0);
    });
}

#[test]
fn empty_merge_is_identity() {
    prop_check!(cases: 32, |g| {
        let window_ns = g.u64_in(10..10_000);
        let mut h = WindowedHist::new(window_ns);
        let mut s = WindowSeries::new(window_ns);
        for _ in 0..g.usize_in(0..50) {
            let (t, v) = gen_obs(g, window_ns, 64);
            h.record(t, v);
            s.add(t, v % 100);
        }
        let h_before = h.clone();
        let s_before = s.clone();
        h.merge(&WindowedHist::new(window_ns));
        s.merge(&WindowSeries::new(window_ns));
        s.merge_max(&WindowSeries::new(window_ns));
        assert_eq!(h, h_before);
        assert_eq!(s, s_before);
    });
}
