//! Exporters: Chrome/Perfetto `trace_event` JSON and gauge CSV.
//!
//! Both outputs are pure functions of the event list, which is itself a
//! pure function of the simulation inputs — so exported artifacts are
//! byte-identical across repeated same-seed runs. Timestamps are emitted
//! with fixed formatting (`ts` in microseconds, three decimals = exact
//! nanoseconds) to keep the bytes stable.

use astriflash_stats::{series_to_csv, CsvDoc, TimeSeries};

use crate::event::{EventKind, Track, TraceEvent};
use crate::json::escape;

/// Renders events as a Perfetto-loadable `trace_event` JSON document
/// (load via <https://ui.perfetto.dev> or `chrome://tracing`).
///
/// Lifecycle spans become async events (`ph` `b`/`n`/`e`, `cat` `miss`)
/// keyed by the span id, so selecting one id shows the whole miss
/// timeline across core, controller, and flash tracks. Slices become
/// complete (`X`) events, gauges become counter (`C`) events.
pub fn perfetto_json(events: &[TraceEvent]) -> String {
    perfetto_json_with_meta(events, 0)
}

/// [`perfetto_json_with_meta`] plus caller-supplied extra trace-event
/// objects appended to the `traceEvents` array — the merge point for
/// sibling producers (e.g. `astriflash-prof`'s host-profile tracks,
/// which render under their own `pid` so they sit alongside the
/// simulation's tracks in one timeline). Each `extra` string must be a
/// complete JSON object; the result still passes
/// [`crate::json::validate`].
pub fn perfetto_json_with_extra(events: &[TraceEvent], dropped: u64, extra: &[String]) -> String {
    let mut out = perfetto_json_with_meta(events, dropped);
    if extra.is_empty() {
        return out;
    }
    // The document ends "…\n]}\n"; splice before the array close. An
    // empty event list still renders the metadata object, so a comma is
    // always correct.
    let tail = "\n]}\n";
    debug_assert!(out.ends_with(tail));
    out.truncate(out.len() - tail.len());
    for obj in extra {
        out.push_str(",\n");
        out.push_str(obj);
    }
    out.push_str(tail);
    out
}

/// [`perfetto_json`] plus ring-overflow metadata: `dropped` (from
/// [`crate::Tracer::dropped`]) is emitted as a top-level
/// `"droppedEvents"` key so a sheared trace is detectable from the
/// artifact alone.
pub fn perfetto_json_with_meta(events: &[TraceEvent], dropped: u64) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 1024);
    out.push_str(&format!(
        "{{\"displayTimeUnit\":\"ns\",\"droppedEvents\":{dropped},\"traceEvents\":[\n"
    ));
    let mut first = true;
    let mut push = |out: &mut String, obj: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&obj);
    };

    // Track-name metadata first, for every track that appears.
    let mut tracks: Vec<Track> = events.iter().map(|e| e.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    push(
        &mut out,
        "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\
         \"args\":{\"name\":\"astriflash-sim\"}}"
            .to_string(),
    );
    for tr in tracks {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                tr.tid(),
                escape(&tr.label())
            ),
        );
    }

    for ev in events {
        let ts = format_ts(ev.t_ns);
        let tid = ev.track.tid();
        let name = escape(ev.name);
        let obj = match ev.kind {
            EventKind::SpanBegin => format!(
                "{{\"ph\":\"b\",\"cat\":\"miss\",\"id\":\"{}\",\"name\":\"{name}\",\
                 \"ts\":{ts},\"pid\":1,\"tid\":{tid},\"args\":{{\"arg\":{}}}}}",
                ev.span, ev.arg
            ),
            EventKind::SpanInstant => format!(
                "{{\"ph\":\"n\",\"cat\":\"miss\",\"id\":\"{}\",\"name\":\"{name}\",\
                 \"ts\":{ts},\"pid\":1,\"tid\":{tid},\"args\":{{\"arg\":{}}}}}",
                ev.span, ev.arg
            ),
            EventKind::SpanEnd => format!(
                "{{\"ph\":\"e\",\"cat\":\"miss\",\"id\":\"{}\",\"name\":\"{name}\",\
                 \"ts\":{ts},\"pid\":1,\"tid\":{tid}}}",
                ev.span
            ),
            EventKind::Slice { dur_ns } => format!(
                "{{\"ph\":\"X\",\"name\":\"{name}\",\"ts\":{ts},\"dur\":{},\
                 \"pid\":1,\"tid\":{tid},\"args\":{{\"arg\":{},\"span\":{}}}}}",
                format_ts(dur_ns),
                ev.arg,
                ev.span
            ),
            EventKind::Instant => format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{name}\",\"ts\":{ts},\
                 \"pid\":1,\"tid\":{tid},\"args\":{{\"arg\":{}}}}}",
                ev.arg
            ),
            EventKind::Gauge { lane, value } => format!(
                "{{\"ph\":\"C\",\"name\":\"{name}[{lane}]\",\"ts\":{ts},\
                 \"pid\":1,\"tid\":{tid},\"args\":{{\"value\":{}}}}}",
                format_float(value)
            ),
        };
        push(&mut out, obj);
    }
    out.push_str("\n]}\n");
    out
}

/// Groups gauge samples into [`TimeSeries`], one per `(name, lane)`, in
/// first-appearance order.
pub fn gauge_series(events: &[TraceEvent]) -> Vec<TimeSeries> {
    let mut series: Vec<TimeSeries> = Vec::new();
    for ev in events {
        if let EventKind::Gauge { lane, value } = ev.kind {
            let slot = series
                .iter()
                .position(|s| s.name() == ev.name && s.lane() == lane);
            let idx = match slot {
                Some(i) => i,
                None => {
                    series.push(TimeSeries::new(ev.name, lane));
                    series.len() - 1
                }
            };
            series[idx].push(ev.t_ns, value);
        }
    }
    series
}

/// Renders all gauge samples as a long-form CSV
/// (`t_ns,gauge,lane,value`).
pub fn gauges_csv(events: &[TraceEvent]) -> CsvDoc {
    gauges_csv_with_meta(events, 0)
}

/// [`gauges_csv`] plus ring-overflow metadata: when `dropped > 0` a
/// final in-band `trace_dropped_events` row records the loss (lane 0,
/// value = count), so downstream readers of the artifact see it without
/// a side channel. With `dropped == 0` the output is byte-identical to
/// [`gauges_csv`].
pub fn gauges_csv_with_meta(events: &[TraceEvent], dropped: u64) -> CsvDoc {
    let mut doc = series_to_csv(&gauge_series(events));
    if dropped > 0 {
        doc.row_owned(vec![
            "0".to_string(),
            "trace_dropped_events".to_string(),
            "0".to_string(),
            format!("{dropped}"),
        ]);
    }
    doc
}

/// `ts` in microseconds with exactly three decimals (= whole
/// nanoseconds), so formatting is bit-stable.
fn format_ts(t_ns: u64) -> String {
    format!("{}.{:03}", t_ns / 1_000, t_ns % 1_000)
}

/// Gauge values with shortest-roundtrip float formatting (deterministic
/// in Rust); non-finite values become null-safe strings.
fn format_float(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::sink::Tracer;

    fn sample_events() -> Vec<TraceEvent> {
        let t = Tracer::ring(64);
        let span = t.begin_span(1_000, Track::Core(0), "miss", 42);
        t.span_instant(1_010, Track::Bc, "bc_admit", 42);
        t.slice(1_020, 50_000, Track::FlashChannel(1), "flash_read", 42);
        t.gauge(2_000, "msr_occupancy", 0, 3.0);
        t.gauge(3_000, "msr_occupancy", 0, 5.0);
        t.gauge(3_000, "runq_len", 2, 1.0);
        t.end_span(60_000, Track::Core(0), "miss", span);
        t.finish()
    }

    #[test]
    fn perfetto_json_is_valid_and_carries_all_phases() {
        let json = perfetto_json(&sample_events());
        validate(&json).expect("exporter must emit parseable JSON");
        for needle in [
            "\"ph\":\"b\"",
            "\"ph\":\"n\"",
            "\"ph\":\"e\"",
            "\"ph\":\"X\"",
            "\"ph\":\"C\"",
            "\"ph\":\"M\"",
            "\"cat\":\"miss\"",
            "flash-ch1",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn export_is_deterministic() {
        let a = perfetto_json(&sample_events());
        let b = perfetto_json(&sample_events());
        assert_eq!(a, b);
        assert_eq!(
            gauges_csv(&sample_events()).render(),
            gauges_csv(&sample_events()).render()
        );
    }

    #[test]
    fn ts_is_exact_nanoseconds() {
        assert_eq!(format_ts(0), "0.000");
        assert_eq!(format_ts(1), "0.001");
        assert_eq!(format_ts(1_234_567), "1234.567");
    }

    #[test]
    fn gauge_series_group_by_name_and_lane() {
        let series = gauge_series(&sample_events());
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].name(), "msr_occupancy");
        assert_eq!(series[0].len(), 2);
        assert_eq!(series[1].lane(), 2);
        let csv = gauges_csv(&sample_events()).render();
        assert!(csv.starts_with("t_ns,gauge,lane,value\n"));
        assert!(csv.contains("2000,msr_occupancy,0,3"));
    }

    #[test]
    fn empty_event_list_still_exports_valid_json() {
        let json = perfetto_json(&[]);
        validate(&json).unwrap();
        assert!(json.contains("traceEvents"));
    }

    #[test]
    fn extra_objects_splice_into_the_event_array() {
        let extra = vec![
            "{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\",\"args\":{\"name\":\"host-prof\"}}"
                .to_string(),
            "{\"ph\":\"X\",\"pid\":2,\"tid\":1,\"name\":\"event_loop\",\"ts\":0.000,\"dur\":5.000}"
                .to_string(),
        ];
        for events in [sample_events(), Vec::new()] {
            let json = perfetto_json_with_extra(&events, 3, &extra);
            validate(&json).expect("merged export must stay valid JSON");
            assert!(json.contains("host-prof"), "{json}");
            assert!(json.contains("\"droppedEvents\":3"), "{json}");
        }
        // No extras = byte-identical to the plain exporter.
        assert_eq!(
            perfetto_json_with_extra(&sample_events(), 0, &[]),
            perfetto_json(&sample_events())
        );
    }

    #[test]
    fn dropped_counts_surface_in_both_exporters() {
        let events = sample_events();
        let json = perfetto_json_with_meta(&events, 17);
        validate(&json).unwrap();
        assert!(json.contains("\"droppedEvents\":17"), "{json}");
        assert!(perfetto_json(&events).contains("\"droppedEvents\":0"));

        let csv = gauges_csv_with_meta(&events, 17).render();
        assert!(csv.ends_with("0,trace_dropped_events,0,17\n"), "{csv}");
        // Zero drops must not perturb the artifact bytes.
        assert_eq!(
            gauges_csv_with_meta(&events, 0).render(),
            gauges_csv(&events).render()
        );
    }
}
