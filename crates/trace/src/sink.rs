//! Sinks that receive trace records, and the cheap [`Tracer`] handle the
//! simulator components share.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::event::{EventKind, Track, TraceEvent};

/// Receives trace records. Implementations must be deterministic: record
/// order is the simulator's (deterministic) emission order and sinks must
/// not reorder or timestamp with anything but the supplied sim-time.
pub trait TraceSink {
    /// Accepts one record.
    fn record(&mut self, ev: TraceEvent);
    /// Removes and returns everything recorded so far, in order.
    fn drain(&mut self) -> Vec<TraceEvent>;
    /// Records discarded due to capacity (0 for unbounded sinks).
    fn dropped(&self) -> u64 {
        0
    }
}

/// Discards everything. The default when tracing is off; the [`Tracer`]
/// handle short-circuits before even constructing events, so a `NullSink`
/// only exists for API completeness (explicitly sink-typed call sites).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _ev: TraceEvent) {}
    fn drain(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// A bounded ring buffer: keeps the most recent `capacity` records and
/// counts what it sheds, so long runs trace with fixed memory.
#[derive(Debug)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            buf: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[derive(Debug)]
struct Inner {
    sink: Box<dyn TraceSink + Send>,
    /// Span the next span-affiliated record is attributed to (0 = none).
    current_span: u64,
    next_span: u64,
}

impl std::fmt::Debug for dyn TraceSink + Send {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TraceSink(dropped={})", self.dropped())
    }
}

/// The handle components emit through. Cloning is cheap (an `Arc`); the
/// default [`Tracer::off`] handle is a `None` and every emit method
/// short-circuits on it, so a disabled tracer costs one branch.
///
/// A simulation cell is single-threaded, so the mutex is uncontended; it
/// exists only to keep components `Send` for the parallel sweep engine.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(off)"),
            Some(_) => write!(f, "Tracer(on)"),
        }
    }
}

impl Tracer {
    /// The disabled tracer: every emission is a no-op.
    pub fn off() -> Self {
        Tracer { inner: None }
    }

    /// A tracer backed by a [`RingSink`] of the given capacity.
    pub fn ring(capacity: usize) -> Self {
        Tracer::with_sink(Box::new(RingSink::new(capacity)))
    }

    /// A tracer backed by an arbitrary sink.
    pub fn with_sink(sink: Box<dyn TraceSink + Send>) -> Self {
        Tracer {
            inner: Some(Arc::new(Mutex::new(Inner {
                sink,
                current_span: 0,
                next_span: 1,
            }))),
        }
    }

    /// Whether emissions reach a sink.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with_inner<R: Default>(&self, f: impl FnOnce(&mut Inner) -> R) -> R {
        match &self.inner {
            None => R::default(),
            Some(m) => f(&mut m.lock().expect("tracer lock poisoned")),
        }
    }

    /// Opens a new lifecycle span, makes it current, and returns its id
    /// (0 when tracing is off).
    pub fn begin_span(&self, t_ns: u64, track: Track, name: &'static str, arg: u64) -> u64 {
        self.with_inner(|inner| {
            let span = inner.next_span;
            inner.next_span += 1;
            inner.current_span = span;
            inner.sink.record(TraceEvent {
                t_ns,
                span,
                track,
                name,
                kind: EventKind::SpanBegin,
                arg,
            });
            span
        })
    }

    /// Makes `span` current so component emissions attribute to it.
    pub fn resume_span(&self, span: u64) {
        self.with_inner(|inner| inner.current_span = span);
    }

    /// Clears the current span (subsequent span-instants degrade to plain
    /// instants).
    pub fn clear_span(&self) {
        self.resume_span(0);
    }

    /// The current span id (0 when none or tracing off).
    pub fn current_span(&self) -> u64 {
        self.with_inner(|inner| inner.current_span)
    }

    /// A point event attributed to the current span.
    pub fn span_instant(&self, t_ns: u64, track: Track, name: &'static str, arg: u64) {
        self.with_inner(|inner| {
            let span = inner.current_span;
            let kind = if span == 0 {
                EventKind::Instant
            } else {
                EventKind::SpanInstant
            };
            inner.sink.record(TraceEvent {
                t_ns,
                span,
                track,
                name,
                kind,
                arg,
            });
        });
    }

    /// Closes `span`; clears it if it was current.
    pub fn end_span(&self, t_ns: u64, track: Track, name: &'static str, span: u64) {
        if span == 0 {
            return;
        }
        self.with_inner(|inner| {
            if inner.current_span == span {
                inner.current_span = 0;
            }
            inner.sink.record(TraceEvent {
                t_ns,
                span,
                track,
                name,
                kind: EventKind::SpanEnd,
                arg: 0,
            });
        });
    }

    /// A `[t_ns, t_ns + dur_ns]` slice on a component track, tagged with
    /// the current span.
    pub fn slice(&self, t_ns: u64, dur_ns: u64, track: Track, name: &'static str, arg: u64) {
        self.with_inner(|inner| {
            inner.sink.record(TraceEvent {
                t_ns,
                span: inner.current_span,
                track,
                name,
                kind: EventKind::Slice { dur_ns },
                arg,
            });
        });
    }

    /// A point event with no span affiliation.
    pub fn instant(&self, t_ns: u64, track: Track, name: &'static str, arg: u64) {
        self.with_inner(|inner| {
            inner.sink.record(TraceEvent {
                t_ns,
                span: 0,
                track,
                name,
                kind: EventKind::Instant,
                arg,
            });
        });
    }

    /// A sampled gauge value on the counter track.
    pub fn gauge(&self, t_ns: u64, name: &'static str, lane: u32, value: f64) {
        self.with_inner(|inner| {
            inner.sink.record(TraceEvent {
                t_ns,
                span: 0,
                track: Track::Counters,
                name,
                kind: EventKind::Gauge { lane, value },
                arg: 0,
            });
        });
    }

    /// Drains every recorded event, in emission order. Empty when off.
    pub fn finish(&self) -> Vec<TraceEvent> {
        self.with_inner(|inner| inner.sink.drain())
    }

    /// Records shed by a bounded sink so far.
    pub fn dropped(&self) -> u64 {
        self.with_inner(|inner| inner.sink.dropped())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_emits_nothing_and_allocates_no_spans() {
        let t = Tracer::off();
        assert!(!t.enabled());
        assert_eq!(t.begin_span(1, Track::Core(0), "miss", 7), 0);
        t.span_instant(2, Track::Bc, "bc_admit", 7);
        t.gauge(3, "msr_occupancy", 0, 1.0);
        assert!(t.finish().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn span_ids_are_sequential_and_current_span_tracks() {
        let t = Tracer::ring(16);
        let a = t.begin_span(1, Track::Core(0), "miss", 1);
        let b = t.begin_span(2, Track::Core(1), "miss", 2);
        assert_eq!((a, b), (1, 2));
        assert_eq!(t.current_span(), 2);
        t.resume_span(a);
        t.span_instant(3, Track::Bc, "bc_admit", 1);
        t.end_span(4, Track::Core(0), "miss", a);
        assert_eq!(t.current_span(), 0, "ending the current span clears it");
        let evs = t.finish();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[2].span, a);
        assert_eq!(evs[2].kind, EventKind::SpanInstant);
    }

    #[test]
    fn span_instant_without_span_degrades_to_instant() {
        let t = Tracer::ring(4);
        t.span_instant(1, Track::Bc, "bc_admit", 9);
        let evs = t.finish();
        assert_eq!(evs[0].kind, EventKind::Instant);
        assert_eq!(evs[0].span, 0);
    }

    #[test]
    fn ring_sheds_oldest_and_counts_drops() {
        let t = Tracer::ring(2);
        t.instant(1, Track::Bc, "a", 0);
        t.instant(2, Track::Bc, "b", 0);
        t.instant(3, Track::Bc, "c", 0);
        assert_eq!(t.dropped(), 1);
        let evs = t.finish();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "b");
        assert_eq!(evs[1].name, "c");
    }

    #[test]
    fn null_sink_discards() {
        let mut s = NullSink;
        s.record(TraceEvent {
            t_ns: 0,
            span: 0,
            track: Track::Bc,
            name: "x",
            kind: EventKind::Instant,
            arg: 0,
        });
        assert!(s.drain().is_empty());
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_ring_panics() {
        RingSink::new(0);
    }
}
