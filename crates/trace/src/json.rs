//! A minimal JSON syntax checker.
//!
//! The CI gate must validate that the emitted Perfetto trace parses
//! without any network-fetched JSON crate, so we carry a ~100-line
//! recursive-descent recognizer. It checks syntax only (RFC 8259
//! grammar); it does not build a DOM.

/// Validates that `s` is exactly one well-formed JSON value.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = skip_ws(b, 0);
    pos = value(b, pos)?;
    pos = skip_ws(b, pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn err(pos: usize, what: &str) -> String {
    format!("{what} at byte {pos}")
}

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

fn value(b: &[u8], pos: usize) -> Result<usize, String> {
    match b.get(pos) {
        None => Err(err(pos, "expected a value, found end of input")),
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(b, pos),
        Some(c) => Err(err(pos, &format!("unexpected byte {:?}", *c as char))),
    }
}

fn literal(b: &[u8], pos: usize, lit: &[u8]) -> Result<usize, String> {
    if b.len() >= pos + lit.len() && &b[pos..pos + lit.len()] == lit {
        Ok(pos + lit.len())
    } else {
        Err(err(pos, "malformed literal"))
    }
}

fn object(b: &[u8], mut pos: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos + 1); // past '{'
    if b.get(pos) == Some(&b'}') {
        return Ok(pos + 1);
    }
    loop {
        if b.get(pos) != Some(&b'"') {
            return Err(err(pos, "expected object key"));
        }
        pos = string(b, pos)?;
        pos = skip_ws(b, pos);
        if b.get(pos) != Some(&b':') {
            return Err(err(pos, "expected ':'"));
        }
        pos = skip_ws(b, pos + 1);
        pos = value(b, pos)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b'}') => return Ok(pos + 1),
            _ => return Err(err(pos, "expected ',' or '}'")),
        }
    }
}

fn array(b: &[u8], mut pos: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos + 1); // past '['
    if b.get(pos) == Some(&b']') {
        return Ok(pos + 1);
    }
    loop {
        pos = value(b, pos)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b']') => return Ok(pos + 1),
            _ => return Err(err(pos, "expected ',' or ']'")),
        }
    }
}

fn string(b: &[u8], mut pos: usize) -> Result<usize, String> {
    pos += 1; // past opening quote
    while let Some(&c) = b.get(pos) {
        match c {
            b'"' => return Ok(pos + 1),
            b'\\' => match b.get(pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => pos += 2,
                Some(b'u') => {
                    let hex = b.get(pos + 2..pos + 6).ok_or_else(|| {
                        err(pos, "truncated \\u escape")
                    })?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(err(pos, "bad \\u escape"));
                    }
                    pos += 6;
                }
                _ => return Err(err(pos, "bad escape")),
            },
            0x00..=0x1F => return Err(err(pos, "raw control character in string")),
            _ => pos += 1,
        }
    }
    Err(err(pos, "unterminated string"))
}

fn number(b: &[u8], mut pos: usize) -> Result<usize, String> {
    let start = pos;
    if b.get(pos) == Some(&b'-') {
        pos += 1;
    }
    match b.get(pos) {
        Some(b'0') => pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(b.get(pos), Some(b'0'..=b'9')) {
                pos += 1;
            }
        }
        _ => return Err(err(pos, "expected digit")),
    }
    if b.get(pos) == Some(&b'.') {
        pos += 1;
        if !matches!(b.get(pos), Some(b'0'..=b'9')) {
            return Err(err(pos, "expected fraction digit"));
        }
        while matches!(b.get(pos), Some(b'0'..=b'9')) {
            pos += 1;
        }
    }
    if matches!(b.get(pos), Some(b'e' | b'E')) {
        pos += 1;
        if matches!(b.get(pos), Some(b'+' | b'-')) {
            pos += 1;
        }
        if !matches!(b.get(pos), Some(b'0'..=b'9')) {
            return Err(err(pos, "expected exponent digit"));
        }
        while matches!(b.get(pos), Some(b'0'..=b'9')) {
            pos += 1;
        }
    }
    debug_assert!(pos > start);
    Ok(pos)
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-0.5e+10",
            r#"{"a":[1,2,{"b":"c\n"}],"d":null}"#,
            "  [1, 2, 3]  ",
            r#""é""#,
        ] {
            assert!(validate(ok).is_ok(), "should accept {ok:?}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "[1] []",
            "{'a':1}",
            "nul",
        ] {
            assert!(validate(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn escape_covers_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert!(validate(&format!("\"{}\"", escape("x\"\n\\\u{2}"))).is_ok());
    }
}
