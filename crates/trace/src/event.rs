//! Trace records and the tracks they land on.
//!
//! Every record is stamped with **simulated time only** (`t_ns`); no wall
//! clock ever enters a trace, so a trace is a pure function of the
//! simulation inputs — byte-identical across repeated runs and across
//! sweep worker counts.

/// The timeline a record is drawn on. Tracks map to Perfetto threads in
/// the exported `trace_event` JSON; lifecycle spans additionally carry a
/// span id so a miss's full timeline reconstructs across tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// A CPU core (frontside-controller probes, switches, resumes).
    Core(u32),
    /// A per-core user-level scheduler (park / pick / ready).
    Scheduler(u32),
    /// The backside controller (MSR admission, installs, writebacks).
    Bc,
    /// One flash channel (queueing, array read, transfer).
    FlashChannel(u32),
    /// The synthetic gauge track for periodic counter samples.
    Counters,
}

impl Track {
    /// Stable Perfetto `tid` for this track.
    pub fn tid(self) -> u64 {
        match self {
            Track::Counters => 1,
            Track::Bc => 10,
            Track::Core(i) => 100 + i as u64,
            Track::Scheduler(i) => 200 + i as u64,
            Track::FlashChannel(c) => 300 + c as u64,
        }
    }

    /// Human-readable track label (Perfetto thread name).
    pub fn label(self) -> String {
        match self {
            Track::Counters => "gauges".to_string(),
            Track::Bc => "backside-controller".to_string(),
            Track::Core(i) => format!("core{i}"),
            Track::Scheduler(i) => format!("sched{i}"),
            Track::FlashChannel(c) => format!("flash-ch{c}"),
        }
    }
}

/// What kind of record this is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// Opens a miss-lifecycle span (`span` is the id).
    SpanBegin,
    /// A point inside an open span (admission, flash issue, arrival…).
    SpanInstant,
    /// Closes a span.
    SpanEnd,
    /// A duration slice on a component track (e.g. a flash array read).
    Slice {
        /// Slice length in nanoseconds.
        dur_ns: u64,
    },
    /// A point event with no span affiliation.
    Instant,
    /// A sampled gauge value (`lane` disambiguates per-core/per-channel
    /// instances of the same gauge).
    Gauge {
        /// Instance index (core id, channel id, or 0).
        lane: u32,
        /// Sampled value.
        value: f64,
    },
}

/// A single trace record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the record, nanoseconds since simulation start.
    pub t_ns: u64,
    /// Miss-lifecycle span id (0 = no span).
    pub span: u64,
    /// Timeline this record belongs to.
    pub track: Track,
    /// Event name (static so recording never allocates).
    pub name: &'static str,
    /// Record kind and kind-specific payload.
    pub kind: EventKind,
    /// Free argument (page number, thread id, overhead ns…).
    pub arg: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tids_are_disjoint_across_track_families() {
        let tracks = [
            Track::Counters,
            Track::Bc,
            Track::Core(0),
            Track::Core(31),
            Track::Scheduler(0),
            Track::Scheduler(31),
            Track::FlashChannel(0),
            Track::FlashChannel(31),
        ];
        let mut tids: Vec<u64> = tracks.iter().map(|t| t.tid()).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), tracks.len(), "tids must not collide");
    }

    #[test]
    fn labels_name_the_instance() {
        assert_eq!(Track::Core(3).label(), "core3");
        assert_eq!(Track::FlashChannel(7).label(), "flash-ch7");
        assert_eq!(Track::Bc.label(), "backside-controller");
    }
}
