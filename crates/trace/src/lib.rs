//! Deterministic observability for the AstriFlash simulator.
//!
//! The paper's argument lives in the µs-scale anatomy of a DRAM-cache
//! miss — abort, thread switch, MSR admission, ~50 µs flash fetch,
//! retry. End-of-run aggregates can't show where one tail-latency
//! outlier spent its time; this crate records the per-miss lifecycle and
//! periodic component gauges so a single run can be opened in Perfetto
//! or re-plotted from CSV.
//!
//! Design rules:
//!
//! * **Sim-time only.** Records carry the simulated clock, never a wall
//!   clock, so a trace is byte-identical across repeated same-seed runs
//!   and across sweep worker counts.
//! * **Zero cost when off.** Components share a [`Tracer`] handle whose
//!   disabled state is a `None`; every emit method short-circuits on one
//!   branch, and golden outputs are unchanged whether tracing is on or
//!   off.
//! * **Bounded memory.** The default [`RingSink`] keeps the most recent
//!   N records and counts what it sheds.
//!
//! # Example
//!
//! ```
//! use astriflash_trace::{export, Track, Tracer};
//!
//! let tracer = Tracer::ring(1024);
//! let span = tracer.begin_span(1_000, Track::Core(0), "miss", 42);
//! tracer.span_instant(1_010, Track::Bc, "bc_admit", 42);
//! tracer.end_span(55_000, Track::Core(0), "miss", span);
//! let events = tracer.finish();
//! let json = export::perfetto_json(&events);
//! assert!(astriflash_trace::json::validate(&json).is_ok());
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod json;
pub mod sink;

pub use event::{EventKind, Track, TraceEvent};
pub use sink::{NullSink, RingSink, TraceSink, Tracer};
