//! AstriFlash — a flash-based system for online services (HPCA 2023
//! reproduction).
//!
//! This façade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! ```
//! use astriflash::prelude::*;
//!
//! let config = SystemConfig::default().with_cores(4);
//! let report = Experiment::new(config, Configuration::AstriFlash)
//!     .seed(1)
//!     .jobs_per_core(50)
//!     .run();
//! assert!(report.throughput_jobs_per_sec > 0.0);
//! ```

pub use astriflash_analyze as analyze;
pub use astriflash_core as core;
pub use astriflash_cpu as cpu;
pub use astriflash_flash as flash;
pub use astriflash_mem as mem;
pub use astriflash_os as os;
pub use astriflash_prof as prof;
pub use astriflash_sim as sim;
pub use astriflash_stats as stats;
pub use astriflash_trace as trace;
pub use astriflash_uthread as uthread;
pub use astriflash_workloads as workloads;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use astriflash_core::config::{Configuration, SystemConfig};
    pub use astriflash_core::experiment::{Experiment, RunReport};
    pub use astriflash_core::queueing::{mm1_p99, mmk_p99, QueueModel};
    pub use astriflash_sim::{SimDuration, SimRng, SimTime};
    pub use astriflash_stats::{Histogram, Percentile};
    pub use astriflash_trace::Tracer;
    pub use astriflash_workloads::{WorkloadKind, ZipfGenerator};
}
